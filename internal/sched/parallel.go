// Package sched drives vm machines under the two execution disciplines
// DoublePlay composes: a discrete-event multiprocessor scheduler (the
// thread-parallel execution) and a deterministic uniprocessor timeslicing
// scheduler (the epoch-parallel execution and replay).
//
// Both schedulers expose an optional trace.Sink: Parallel emits one "run"
// span per thread↔CPU binding and Uni one "slice" span per timeslice.
// Tracing reads the schedulers' clocks but never advances them, so traced
// and untraced runs retire identical schedules and cycle counts.
package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"doubleplay/internal/dplog"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
)

// ErrDeadlock reports that no thread can make progress.
var ErrDeadlock = errors.New("sched: deadlock — no thread can make progress")

// DefaultQuantum is the timeslice length, in retired instructions, used by
// both schedulers when multiplexing threads on one CPU.
const DefaultQuantum = 2000

// sysPollInterval is how often, in cycles, a thread blocked in a syscall
// re-attempts it.
const sysPollInterval = 200

// Parallel is a discrete-event simulation of an SMP running the guest
// machine: each CPU has its own clock, the CPU with the smallest clock
// executes the next instruction of its bound thread, and unbound runnable
// threads are dispatched to free CPUs round-robin. Instruction costs carry
// seeded jitter so different seeds produce different interleavings of racy
// accesses, modelling real hardware timing variation.
type Parallel struct {
	M       *vm.Machine
	CPUs    int
	Quantum int64

	// Trace, when set, receives one span per thread↔CPU binding (named
	// TraceSpan, default "run"), homed on (TracePid, guest tid) with the
	// CPU index in args — the thread-parallel occupancy timeline. Tracing
	// never alters any clock. Both the buffered and the streaming sink
	// satisfy the interface; leaving the field nil disables tracing.
	Trace     trace.Recorder
	TracePid  int64
	TraceSpan string

	cpus     []pcpu
	rng      *rand.Rand
	scanFrom int // round-robin cursor for dispatch fairness
	sysPoll  map[int]int64
	retired  int64
}

type pcpu struct {
	clock  int64
	tid    int // bound thread, or -1
	sliceN int64
	bindTs int64 // clock at bind time, for the "run" trace span
}

// NewParallel builds a scheduler for m over the given number of CPUs.
func NewParallel(m *vm.Machine, cpus int, seed int64) *Parallel {
	if cpus < 1 {
		cpus = 1
	}
	p := &Parallel{
		M:       m,
		CPUs:    cpus,
		Quantum: DefaultQuantum,
		cpus:    make([]pcpu, cpus),
		rng:     rand.New(rand.NewSource(seed)),
		sysPoll: make(map[int]int64),
	}
	for i := range p.cpus {
		p.cpus[i].tid = -1
	}
	return p
}

// Now returns the frontier of simulated time: the smallest CPU clock, which
// is the cycle at which the next instruction will execute.
func (p *Parallel) Now() int64 {
	min := p.cpus[0].clock
	for _, c := range p.cpus[1:] {
		if c.clock < min {
			min = c.clock
		}
	}
	return min
}

// WallTime returns the completion time so far: the largest CPU clock.
func (p *Parallel) WallTime() int64 {
	max := p.cpus[0].clock
	for _, c := range p.cpus[1:] {
		if c.clock > max {
			max = c.clock
		}
	}
	return max
}

// Retired returns the total instructions retired under this scheduler.
func (p *Parallel) Retired() int64 { return p.retired }

// minCPU returns the index of the CPU with the smallest clock.
func (p *Parallel) minCPU() int {
	best := 0
	for i := 1; i < len(p.cpus); i++ {
		if p.cpus[i].clock < p.cpus[best].clock {
			best = i
		}
	}
	return best
}

// boundElsewhere reports whether tid is bound to any CPU.
func (p *Parallel) boundElsewhere(tid int) bool {
	for i := range p.cpus {
		if p.cpus[i].tid == tid {
			return true
		}
	}
	return false
}

// dispatch finds work for CPU ci: an unbound runnable thread, or an unbound
// syscall-blocked thread whose poll timer has expired.
func (p *Parallel) dispatch(ci int) *vm.Thread {
	threads := p.M.Threads
	n := len(threads)
	if n == 0 {
		return nil
	}
	for k := 0; k < n; k++ {
		t := threads[(p.scanFrom+k)%n]
		if t.Status == vm.Runnable && !p.boundElsewhere(t.ID) {
			p.scanFrom = (p.scanFrom + k + 1) % n
			p.cpus[ci].tid = t.ID
			p.cpus[ci].sliceN = 0
			p.cpus[ci].bindTs = p.cpus[ci].clock
			return t
		}
	}
	clock := p.cpus[ci].clock
	for k := 0; k < n; k++ {
		t := threads[(p.scanFrom+k)%n]
		if t.Status == vm.BlockedSys && !p.boundElsewhere(t.ID) && p.sysPoll[t.ID] <= clock {
			p.cpus[ci].tid = t.ID
			p.cpus[ci].sliceN = 0
			p.cpus[ci].bindTs = p.cpus[ci].clock
			return t
		}
	}
	return nil
}

// unbind releases CPU ci's thread.
func (p *Parallel) unbind(ci int) {
	if trace.Enabled(p.Trace) && p.cpus[ci].tid >= 0 && p.cpus[ci].clock > p.cpus[ci].bindTs {
		name := p.TraceSpan
		if name == "" {
			name = "run"
		}
		p.Trace.Span(name, p.cpus[ci].bindTs, p.cpus[ci].clock-p.cpus[ci].bindTs,
			p.TracePid, int64(p.cpus[ci].tid), map[string]any{"cpu": ci})
	}
	p.cpus[ci].tid = -1
	p.cpus[ci].sliceN = 0
}

// RunUntil executes until every CPU's clock reaches limit, the machine
// terminates, or no progress is possible. It returns ErrDeadlock (wrapped
// with machine state) when live threads exist but none can ever run.
func (p *Parallel) RunUntil(limit int64) error {
	idleStreak := 0
	for !p.M.Done() {
		ci := p.minCPU()
		cpu := &p.cpus[ci]
		if cpu.clock >= limit {
			return nil
		}
		t := p.threadOf(ci)
		if t == nil {
			t = p.dispatch(ci)
		}
		if t == nil {
			// Nothing for this CPU. If some thread is blocked in a syscall,
			// time itself will unblock it: hop the clock to the next poll.
			if next, ok := p.nextSysPoll(); ok {
				if next <= cpu.clock {
					next = cpu.clock + 1
				}
				cpu.clock = next
				idleStreak++
				if idleStreak > 1<<20 {
					return fmt.Errorf("sched: livelock polling syscalls\n%s", p.M.DescribeState())
				}
				continue
			}
			if p.anyRunnable() {
				// Runnable work exists but is bound to busier CPUs; idle
				// briefly and retry (models an idle core waiting for work).
				cpu.clock += 10
				idleStreak++
				if idleStreak > 1<<20 {
					return fmt.Errorf("sched: livelock waiting for work\n%s", p.M.DescribeState())
				}
				continue
			}
			return fmt.Errorf("%w\n%s", ErrDeadlock, p.M.DescribeState())
		}
		idleStreak = 0
		p.M.Now = cpu.clock
		res := p.M.Step(t)
		if res.Retired {
			p.retired++
			cost := res.Cost
			// Timing jitter: occasional slow memory access. This is the
			// hardware nondeterminism that makes racy programs produce
			// different interleavings under different seeds.
			if p.rng.Intn(64) == 0 {
				cost += int64(p.rng.Intn(24))
			}
			cpu.clock += cost
			cpu.sliceN++
			if !t.Status.Live() || cpu.sliceN >= p.Quantum {
				p.unbind(ci)
			}
			continue
		}
		// The step did not retire: the thread blocked (or re-blocked).
		if t.Status == vm.BlockedSys {
			p.sysPoll[t.ID] = cpu.clock + sysPollInterval
		}
		if t.Status == vm.Faulted {
			p.unbind(ci)
			continue
		}
		// Release the CPU; a tiny charge models the failed attempt.
		cpu.clock += 1
		p.unbind(ci)
	}
	return nil
}

// Run executes to completion.
func (p *Parallel) Run() error {
	const forever = int64(1) << 62
	return p.RunUntil(forever)
}

// AddCost advances every CPU clock by c cycles, modelling work that pauses
// the whole machine — taking a checkpoint, draining log buffers.
func (p *Parallel) AddCost(c int64) {
	for i := range p.cpus {
		p.cpus[i].clock += c
	}
}

// SetBaseClock moves every CPU clock to at least c; used when the
// thread-parallel run resumes after a forward recovery, whose detection and
// repair happened at simulated time c.
func (p *Parallel) SetBaseClock(c int64) {
	for i := range p.cpus {
		if p.cpus[i].clock < c {
			p.cpus[i].clock = c
		}
	}
}

func (p *Parallel) threadOf(ci int) *vm.Thread {
	tid := p.cpus[ci].tid
	if tid < 0 {
		return nil
	}
	t := p.M.Threads[tid]
	if t.Status == vm.Runnable {
		return t
	}
	// Bound thread blocked or died between steps (e.g. barrier side
	// effects); release the CPU.
	p.unbind(ci)
	return nil
}

func (p *Parallel) nextSysPoll() (int64, bool) {
	var best int64
	found := false
	for _, t := range p.M.Threads {
		if t.Status != vm.BlockedSys || p.boundElsewhere(t.ID) {
			continue
		}
		at := p.sysPoll[t.ID]
		if !found || at < best {
			best = at
			found = true
		}
	}
	return best, found
}

func (p *Parallel) anyRunnable() bool {
	for _, t := range p.M.Threads {
		if t.Status == vm.Runnable {
			return true
		}
	}
	return false
}

// Slice re-exports the timeslice record type for convenience.
type Slice = dplog.Slice
