// Package doubleplay is the public façade of the DoublePlay reproduction:
// deterministic record/replay for multithreaded programs on a simulated
// multiprocessor, using uniparallelism (Veeraraghavan et al., ASPLOS 2011).
//
// # Model
//
// Guest programs are written against the asm builder ([NewProgram]) and run
// on a deterministic bytecode multiprocessor with threads, locks, barriers,
// atomics, and a simulated OS ([NewWorld]) providing files, sockets, a
// clock, and a PRNG.
//
// [Record] performs a uniparallel recording: a thread-parallel execution
// generates epoch checkpoints while an epoch-parallel execution — each
// epoch's threads timesliced on one CPU, epochs pipelined across spare
// cores — produces the actual replay log: per-epoch timeslice schedules
// plus syscall results. Data races may make the two executions disagree; a
// divergence is detected at the epoch boundary and repaired by forward
// recovery, and the resulting log always replays. Setting
// RecordOptions.Adaptive replaces the fixed spare-core count with a
// feedback controller that grows and shrinks the pipeline from the live
// commit-lag signal, within [AdaptiveMinSpares, AdaptiveMaxSpares];
// recordings stay deterministic and bit-identically replayable either way.
//
// [ReplaySequential] reproduces the recording on one simulated CPU;
// [ReplayParallel] replays all epochs concurrently from the retained
// checkpoints on real host goroutines.
//
// # Quickstart
//
//	b := doubleplay.NewProgram("hello")
//	// ... build guest functions (see examples/quickstart) ...
//	prog := b.MustBuild()
//	res, err := doubleplay.Record(prog, doubleplay.NewWorld(1), doubleplay.RecordOptions{
//		Workers: 2, SpareCPUs: 2,
//	})
//	rep, err := doubleplay.ReplaySequential(prog, res.Recording)
//
// The builtin benchmark suite mirroring the paper's evaluation is exposed
// through [Workloads] and [BuildWorkload].
package doubleplay

import (
	"context"
	"io"

	"doubleplay/internal/analyze"
	"doubleplay/internal/asm"
	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/profile"
	"doubleplay/internal/race"
	"doubleplay/internal/replay"
	"doubleplay/internal/sched"
	"doubleplay/internal/server"
	"doubleplay/internal/simos"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// Program is an executable guest image.
type Program = vm.Program

// Builder constructs guest programs; see internal/asm for the full API.
type Builder = asm.Builder

// Func is a guest function under construction.
type Func = asm.Func

// Reg names a guest register.
type Reg = asm.Reg

// World is the simulated OS environment a guest runs against.
type World = simos.World

// Recording is a complete replay log.
type Recording = dplog.Recording

// RecordOptions configure a recording; see core.Options for field docs.
type RecordOptions = core.Options

// RecordResult is a completed recording with its retained checkpoints.
type RecordResult = core.Result

// RecordStats aggregates what the recorder measured.
type RecordStats = core.Stats

// NativeResult reports an unrecorded baseline execution.
type NativeResult = core.NativeResult

// ReplayResult reports a completed replay.
type ReplayResult = replay.Result

// Boundary is an epoch-start checkpoint retained for parallel replay.
type Boundary = epoch.Boundary

// CostModel prices simulated operations; DefaultCosts returns the
// calibration used by the evaluation.
type CostModel = vm.CostModel

// TraceSink collects timeline events from recordings and replays; set
// RecordOptions.Trace (or use [ReplaySequentialTraced]) and export with
// its WriteJSON method. Events use the Chrome trace_event format,
// viewable at https://ui.perfetto.dev; see docs/OBSERVABILITY.md for the
// event schema. A nil *TraceSink is valid everywhere and disables tracing
// at zero cost.
type TraceSink = trace.Sink

// NewTraceSink returns an empty, enabled trace sink.
func NewTraceSink() *TraceSink { return trace.NewSink() }

// TraceRecorder is the event-collection interface shared by the buffered
// [TraceSink] and the incremental [StreamSink]; everything traced accepts
// either.
type TraceRecorder = trace.Recorder

// StreamSink writes trace events to an io.Writer incrementally with a
// bounded in-memory reorder window instead of buffering the whole run;
// see trace.NewStreamSink. Close it to finish the JSON document.
type StreamSink = trace.StreamSink

// NewStreamSink returns a streaming trace sink over w. A window of 0
// selects trace.DefaultStreamWindow.
func NewStreamSink(w io.Writer, window int) *StreamSink { return trace.NewStreamSink(w, window) }

// GuestProfile is the deterministic guest cycle profile: retired cycles
// attributed to guest call stacks, gathered while recording
// (RecordOptions.Profile) or while replaying ([ReplaySequentialProfiled],
// [ReplayParallelProfiled]). For the same recording the two are
// byte-identical — production profiles can be regenerated offline,
// exactly, from the log. Export with WritePprof (pprof profile.proto) or
// WriteFolded (flamegraph input); render with `dptrace flame`. See
// docs/OBSERVABILITY.md.
type GuestProfile = profile.Profile

// NewGuestProfile returns an empty guest profile to accumulate into.
func NewGuestProfile() *GuestProfile { return profile.NewProfile("") }

// ParseGuestProfile decodes a pprof-encoded guest profile (the bytes
// WritePprof produced, or any spec-conforming profile.proto message).
func ParseGuestProfile(data []byte) (*GuestProfile, error) { return profile.ParsePprof(data) }

// ReplaySequentialProfiled is ReplaySequential gathering the guest profile
// of the replayed execution into prof (nil disables profiling).
func ReplaySequentialProfiled(prog *Program, rec *Recording, prof *GuestProfile) (*ReplayResult, error) {
	return replay.SequentialProfiled(nil, prog, rec, nil, nil, prof)
}

// ReplayParallelProfiled is ReplayParallel gathering the guest profile of
// the replayed execution into prof (nil disables profiling). The profile
// is byte-identical to the sequential strategy's regardless of how the
// epochs interleave across workers.
func ReplayParallelProfiled(prog *Program, rec *Recording, boundaries []*Boundary, cpus int, prof *GuestProfile) (*ReplayResult, error) {
	return replay.ParallelProfiled(nil, prog, rec, boundaries, cpus, nil, nil, prof)
}

// MetricsRegistry aggregates counters, gauges, and latency histograms
// across recordings; set RecordOptions.Metrics and print with Render.
type MetricsRegistry = trace.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return trace.NewRegistry() }

// WorkloadParams size a builtin benchmark instance.
type WorkloadParams = workloads.Params

// BuiltWorkload is a ready-to-run benchmark instance.
type BuiltWorkload = workloads.Built

// NewProgram starts building a guest program.
func NewProgram(name string) *Builder { return asm.NewBuilder(name) }

// InstallStdlib adds the guest runtime library (std.memcpy, std.memset,
// std.memcmp, std.sum, std.max, std.fill_lcg, std.checksum, std.bsearch)
// to a program under construction; call before Build.
func InstallStdlib(b *Builder) { asm.InstallStdlib(b) }

// NewWorld returns an empty simulated environment with the given seed.
func NewWorld(seed int64) *World { return simos.NewWorld(seed) }

// DefaultCosts returns the evaluation's cost model.
func DefaultCosts() *CostModel { return vm.DefaultCosts() }

// Record performs a uniparallel recording of prog against world. The world
// is consumed; build a fresh one per run.
func Record(prog *Program, world *World, opt RecordOptions) (*RecordResult, error) {
	return core.Record(prog, world, opt)
}

// RunNative executes prog with no recording — the overhead baseline.
func RunNative(prog *Program, world *World, cpus int, seed int64) (*NativeResult, error) {
	return core.RunNative(prog, world, cpus, seed, nil)
}

// ReplaySequential reproduces a recording epoch by epoch on one simulated
// CPU, verifying every boundary hash.
func ReplaySequential(prog *Program, rec *Recording) (*ReplayResult, error) {
	return replay.Sequential(prog, rec, nil, nil)
}

// ReplayParallel replays all epochs concurrently from the retained
// checkpoints across cpus host workers.
func ReplayParallel(prog *Program, rec *Recording, boundaries []*Boundary, cpus int) (*ReplayResult, error) {
	return replay.Parallel(prog, rec, boundaries, cpus, nil, nil)
}

// ReplayParallelSparse replays segments of consecutive epochs concurrently
// from a thinned checkpoint set (see RecordResult.ThinBoundaries), trading
// replay parallelism for checkpoint memory.
func ReplayParallelSparse(prog *Program, rec *Recording, sparse []*Boundary, cpus int) (*ReplayResult, error) {
	return replay.ParallelSparse(prog, rec, sparse, cpus, nil, nil)
}

// ReplaySequentialTraced is ReplaySequential with a timeline sink: the
// replay's epochs and timeslices are appended to sink as "replay.epoch"
// spans. A nil sink makes it identical to ReplaySequential.
func ReplaySequentialTraced(prog *Program, rec *Recording, sink TraceRecorder) (*ReplayResult, error) {
	return replay.Sequential(prog, rec, nil, sink)
}

// ReplayParallelTraced is ReplayParallel with a timeline sink: each epoch
// appears at its packed position on a per-core track.
func ReplayParallelTraced(prog *Program, rec *Recording, boundaries []*Boundary, cpus int, sink TraceRecorder) (*ReplayResult, error) {
	return replay.Parallel(prog, rec, boundaries, cpus, nil, sink)
}

// SaveRecording writes a recording in the binary log format.
func SaveRecording(w io.Writer, rec *Recording) error { return dplog.Marshal(w, rec) }

// LoadRecording reads a recording written by SaveRecording. All on-disk
// format versions decode; see docs/FORMAT.md.
func LoadRecording(r io.Reader) (*Recording, error) { return dplog.Unmarshal(r) }

// LogReader is a random-access view of a stored recording: the v6 log
// format keeps one self-contained section per epoch behind a trailing
// offset index, so a reader can seek straight to epoch N without
// decoding — or even touching — the epochs before it. Legacy v4/v5 logs
// open through the same API (fully decoded up front). Readers are safe
// for concurrent use. See docs/FORMAT.md for the byte layout.
type LogReader = dplog.Reader

// LogHeader is a stored recording's run metadata.
type LogHeader = dplog.Header

// LogSection describes one epoch section of an opened log: its epoch id,
// byte offset, stored and uncompressed sizes, flags, and checksum.
type LogSection = dplog.SectionInfo

// OpenRecording opens an encoded recording for random access without
// decoding its epochs.
func OpenRecording(data []byte) (*LogReader, error) { return dplog.OpenReaderBytes(data) }

// OpenRecordingAt is OpenRecording over an io.ReaderAt (e.g. an *os.File),
// reading only the header, the index, and the sections actually seeked.
func OpenRecordingAt(r io.ReaderAt, size int64) (*LogReader, error) {
	return dplog.OpenReader(r, size)
}

// UpgradeRecording migrates an encoded recording to the current sectioned
// format: legacy v4/v5 logs are re-encoded, and v6 logs with a damaged
// index are repaired from their recoverable sections. It returns the
// (possibly unchanged) bytes and whether a rewrite happened.
func UpgradeRecording(data []byte) ([]byte, bool, error) { return dplog.Upgrade(data) }

// Workloads lists the builtin benchmark names in presentation order.
func Workloads() []string {
	all := workloads.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// WorkloadInfo describes a builtin benchmark.
type WorkloadInfo struct {
	Name string
	Kind string
	Desc string
	Racy bool
}

// DescribeWorkload returns metadata for a builtin benchmark, or nil.
func DescribeWorkload(name string) *WorkloadInfo {
	w := workloads.Get(name)
	if w == nil {
		return nil
	}
	return &WorkloadInfo{Name: w.Name, Kind: w.Kind, Desc: w.Desc, Racy: w.Racy}
}

// BuildWorkload instantiates a builtin benchmark, returning its program and
// a fresh world. It returns nil for unknown names.
func BuildWorkload(name string, p WorkloadParams) *BuiltWorkload {
	w := workloads.Get(name)
	if w == nil {
		return nil
	}
	return w.Build(p)
}

// VetReport is the result of statically analyzing a guest program.
type VetReport = analyze.Findings

// VetFinding is one static-analysis finding.
type VetFinding = analyze.Finding

// Vet statically screens a guest program without executing it: CFG and
// dataflow checks (branch targets, lock balance, uninitialized and dead
// registers) plus a lockset race screen whose candidates cover every
// address the dynamic detector can implicate. Use it before Record to
// know which programs can diverge, and FindRaces afterwards to confirm
// which candidates are real. See cmd/dpvet for the CLI.
func Vet(prog *Program) *VetReport { return analyze.Run(prog) }

// Certificate is the static race-freedom certificate analyze computes
// alongside its findings: a sound classification of the whole program
// (and each function) as proven race-free, possibly racy, or beyond the
// analysis. See docs/ANALYSIS.md for its semantics.
type Certificate = analyze.Certificate

// CertStatus is one certificate classification.
type CertStatus = analyze.CertStatus

// Certificate classifications. Only CertRaceFree licenses skipping the
// epoch-parallel verification pass.
const (
	CertRaceFree     = analyze.CertRaceFree
	CertPossiblyRacy = analyze.CertPossiblyRacy
	CertIncomplete   = analyze.CertIncomplete
)

// Certify statically analyzes a guest program and returns its
// race-freedom certificate — the decision input Record consults under
// VerifyCertified.
func Certify(prog *Program) *Certificate { return analyze.Run(prog).Cert }

// VerifyPolicy selects how Record validates epochs; see RecordOptions.
type VerifyPolicy = core.VerifyPolicy

// Verification policies. VerifyAlways (the zero value) runs the
// epoch-parallel pass for every epoch; VerifyCertified commits epochs
// directly from the logged thread-parallel execution when Certify proves
// the program race-free, falling back to VerifyAlways otherwise.
const (
	VerifyAlways    = core.VerifyAlways
	VerifyCertified = core.VerifyCertified
)

// ParseVerifyPolicy maps "always"/"certified" (or "") to a policy.
func ParseVerifyPolicy(s string) (VerifyPolicy, error) { return core.ParseVerifyPolicy(s) }

// ErrCertViolated reports a certified epoch whose replay did not
// reproduce the recorded state — a soundness bug in the certificate, not
// an ordinary divergence.
var ErrCertViolated = replay.ErrCertViolated

// RecordContext is Record with cooperative cancellation: the recording
// stops at the first epoch boundary after ctx is done and returns an
// error wrapping ctx.Err(). Simulated state is never left half-committed,
// so cancellation latency is bounded by one epoch.
func RecordContext(ctx context.Context, prog *Program, world *World, opt RecordOptions) (*RecordResult, error) {
	opt.Context = ctx
	return core.Record(prog, world, opt)
}

// RecordingCheckpoints rebuilds the epoch-start checkpoints of a stored
// recording by replaying it once sequentially — recordings persist only
// the logs, and parallel replay needs a starting state per epoch. The
// returned boundaries feed [ReplayParallel] or, thinned with
// [ThinCheckpoints], [ReplayParallelSparse].
func RecordingCheckpoints(ctx context.Context, prog *Program, rec *Recording) ([]*Boundary, error) {
	return replay.Checkpoints(ctx, prog, rec, nil)
}

// ThinCheckpoints keeps every stride-th boundary (always including the
// first and last), the sparse set segment-parallel replay starts from.
func ThinCheckpoints(bs []*Boundary, stride int) []*Boundary { return replay.Thin(bs, stride) }

// JobServer is the record/replay daemon behind `doubleplay serve`: a
// bounded job queue, a worker pool, a content-addressed artifact store,
// and a JSON HTTP API (see docs/SERVER.md). Construct with
// [NewJobServer], launch the pool with Start, mount Handler on an HTTP
// listener, and drain with Shutdown.
type JobServer = server.Server

// JobServerConfig tunes a [JobServer].
type JobServerConfig = server.Config

// JobSpec is a job submission — the JSON body of POST /jobs.
type JobSpec = server.Spec

// JobInfo is the API view of a job's lifecycle and result.
type JobInfo = server.Info

// NewJobServer opens the artifact store and builds a job daemon.
func NewJobServer(cfg JobServerConfig) (*JobServer, error) { return server.New(cfg) }

// RaceReport is one detected data race.
type RaceReport = race.Report

// FindRaces executes prog uniprocessor under a vector-clock happens-before
// detector and returns the racy addresses found. This is the debugging step
// DoublePlay's replay enables: once an execution replays deterministically,
// the race that caused a divergence can be located offline.
func FindRaces(prog *Program, world *World) ([]RaceReport, error) {
	det := race.NewDetector(0)
	m := vm.NewMachine(prog, simos.NewOS(world), nil)
	m.Hooks.OnSync = det.OnSync
	m.Hooks.OnMemAccess = det.OnMemAccess
	uni := sched.NewUni(m)
	if err := uni.Run(); err != nil {
		return nil, err
	}
	return det.Races(), nil
}
