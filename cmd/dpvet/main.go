// Command dpvet statically checks guest programs — the builtin workloads
// by default — without executing a single instruction: CFG and dataflow
// verification (branch targets, lock balance, uninitialized registers,
// dead code) plus the lockset race screen.
//
// The certify subcommand prints each workload's race-freedom certificate
// (race-free / possibly-racy / incomplete) — the decision input the
// recorder consults under -verify-policy certified — and cross-validates
// it against the workloads' Racy ground truth: a workload marked racy
// must never be proven race-free.
//
// Exit status: 0 when every analyzed program is consistent, 1 when any
// error-severity finding is reported or a workload's Racy metadata
// disagrees with the screen (a racy workload with no candidates, a
// race-free one with any, or a known racy cell no candidate covers) or,
// under certify, a racy workload is certified race-free, 2 on usage
// errors.
//
//	dpvet                  # analyze every builtin workload
//	dpvet racey kvdb       # analyze specific workloads
//	dpvet -disasm racey    # full annotated listing
//	dpvet -json            # findings as JSON
//	dpvet certify          # race-freedom certificates for every workload
//	dpvet -json certify    # certificates as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"doubleplay/internal/analyze"
	"doubleplay/internal/asm"
	"doubleplay/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		workers = flag.Int("workers", 2, "worker threads per workload build")
		scale   = flag.Int("scale", 1, "problem size multiplier")
		seed    = flag.Int64("seed", 1, "input generation seed")
		verbose = flag.Bool("v", false, "also print info-severity findings")
		quiet   = flag.Bool("q", false, "print only per-program summaries")
		listing = flag.Bool("disasm", false, "print the full annotated listing per program")
		radius  = flag.Int("context", 2, "disassembly context radius around each finding")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of text")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dpvet [flags] [certify] [workload ...]\n\n"+
			"Statically analyzes builtin guest workloads (all of them when none are\n"+
			"named): structural verification, dataflow lints, and the lockset race\n"+
			"screen. The certify subcommand prints race-freedom certificates instead.\n"+
			"Exits non-zero on error findings or Racy-metadata mismatches.\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nworkloads: %v\n", workloadNames())
	}
	flag.Parse()

	names := flag.Args()
	certify := false
	if len(names) > 0 && names[0] == "certify" {
		certify = true
		// Accept flags on either side of the subcommand: `dpvet -json
		// certify` and `dpvet certify -json` both work. ExitOnError makes
		// a failed re-parse exit 2 directly.
		_ = flag.CommandLine.Parse(names[1:])
		names = flag.Args()
	}
	if len(names) == 0 {
		names = workloadNames()
	}
	params := workloads.Params{Workers: *workers, Scale: *scale, Seed: *seed}
	if certify {
		return runCertify(names, params, *jsonOut)
	}

	fail := false
	var jsonReports []map[string]any
	for _, name := range names {
		w := workloads.Get(name)
		if w == nil {
			fmt.Fprintf(os.Stderr, "dpvet: unknown workload %q (have %v)\n", name, workloadNames())
			return 2
		}
		bt := w.Build(params)
		fs := analyze.Run(bt.Prog)
		races := fs.Races()
		if *jsonOut {
			jsonReports = append(jsonReports, map[string]any{
				"program":     name,
				"summary":     fs.Summary(),
				"errors":      fs.Errors(),
				"candidates":  len(races),
				"findings":    fs.List,
				"certificate": fs.Cert,
			})
		} else {
			fmt.Printf("== %-14s %s\n", name, fs.Summary())
			if !*quiet {
				for _, f := range fs.List {
					if f.Sev == analyze.SevInfo && !*verbose {
						continue
					}
					fmt.Printf("   %s\n", f)
					if *radius > 0 && f.PC >= 0 && f.PC < len(bt.Prog.Code) {
						fmt.Print(asm.Context(bt.Prog, f.PC, *radius))
					}
				}
			}
			if *listing {
				notes := make(map[int][]string)
				for _, f := range fs.List {
					notes[f.PC] = append(notes[f.PC], f.String())
				}
				fmt.Print(asm.Listing(bt.Prog, notes))
			}
		}
		if fs.Errors() > 0 {
			fail = true
		}
		if *workers < 2 {
			// A single worker cannot race with itself; the Racy metadata
			// describes multi-worker builds, so the cross-check would only
			// mislead here.
			if w.Racy && !*jsonOut {
				fmt.Printf("   note: racy-metadata cross-check skipped with -workers %d\n", *workers)
			}
			continue
		}
		switch {
		case w.Racy && len(races) == 0:
			crossFail(*jsonOut, "%s is marked racy but the screen found no candidates\n", name)
			fail = true
		case !w.Racy && len(races) > 0:
			crossFail(*jsonOut, "%s is race-free but the screen flagged %d candidate(s)\n", name, len(races))
			fail = true
		}
		for _, addr := range bt.RacyAddrs {
			if !fs.Covers(addr) {
				crossFail(*jsonOut, "known racy cell %d is not covered by any candidate\n", addr)
				fail = true
			}
		}
	}
	if *jsonOut {
		emitJSON(jsonReports)
	}
	if fail {
		return 1
	}
	return 0
}

// runCertify prints (or emits as JSON) each workload's race-freedom
// certificate and enforces the soundness cross-check against the Racy
// ground truth.
func runCertify(names []string, params workloads.Params, jsonOut bool) int {
	fail := false
	var certs []*analyze.Certificate
	for _, name := range names {
		w := workloads.Get(name)
		if w == nil {
			fmt.Fprintf(os.Stderr, "dpvet: unknown workload %q (have %v)\n", name, workloadNames())
			return 2
		}
		bt := w.Build(params)
		cert := analyze.Run(bt.Prog).Cert
		if jsonOut {
			certs = append(certs, cert)
		} else {
			fmt.Printf("== %-14s %s\n", name, cert)
			for _, r := range cert.Reasons {
				fmt.Printf("   - %s\n", r)
			}
		}
		// Soundness gate: a workload with known races must never be proven
		// race-free. (The converse is fine — the certificate is allowed to
		// be conservative about race-free programs.)
		if w.Racy && params.Workers >= 2 && cert.RaceFree() {
			crossFail(jsonOut, "%s is marked racy but was certified race-free — soundness bug\n", name)
			fail = true
		}
	}
	if jsonOut {
		emitJSON(certs)
	}
	if fail {
		return 1
	}
	return 0
}

func crossFail(jsonOut bool, format string, args ...any) {
	if jsonOut {
		fmt.Fprintf(os.Stderr, "dpvet: FAIL: "+format, args...)
	} else {
		fmt.Printf("   FAIL: "+format, args...)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func workloadNames() []string {
	all := workloads.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}
