// Command dpvet statically checks guest programs — the builtin workloads
// by default — without executing a single instruction: CFG and dataflow
// verification (branch targets, lock balance, uninitialized registers,
// dead code) plus the lockset race screen.
//
// Exit status: 0 when every analyzed program is consistent, 1 when any
// error-severity finding is reported or a workload's Racy metadata
// disagrees with the screen (a racy workload with no candidates, a
// race-free one with any, or a known racy cell no candidate covers),
// 2 on usage errors.
//
//	dpvet                  # analyze every builtin workload
//	dpvet racey kvdb       # analyze specific workloads
//	dpvet -disasm racey    # full annotated listing
package main

import (
	"flag"
	"fmt"
	"os"

	"doubleplay/internal/analyze"
	"doubleplay/internal/asm"
	"doubleplay/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		workers = flag.Int("workers", 2, "worker threads per workload build")
		scale   = flag.Int("scale", 1, "problem size multiplier")
		seed    = flag.Int64("seed", 1, "input generation seed")
		verbose = flag.Bool("v", false, "also print info-severity findings")
		quiet   = flag.Bool("q", false, "print only per-program summaries")
		listing = flag.Bool("disasm", false, "print the full annotated listing per program")
		radius  = flag.Int("context", 2, "disassembly context radius around each finding")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dpvet [flags] [workload ...]\n\n"+
			"Statically analyzes builtin guest workloads (all of them when none are\n"+
			"named): structural verification, dataflow lints, and the lockset race\n"+
			"screen. Exits non-zero on error findings or Racy-metadata mismatches.\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nworkloads: %v\n", workloadNames())
	}
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = workloadNames()
	}
	fail := false
	for _, name := range names {
		w := workloads.Get(name)
		if w == nil {
			fmt.Fprintf(os.Stderr, "dpvet: unknown workload %q (have %v)\n", name, workloadNames())
			return 2
		}
		bt := w.Build(workloads.Params{Workers: *workers, Scale: *scale, Seed: *seed})
		fs := analyze.Run(bt.Prog)
		races := fs.Races()
		fmt.Printf("== %-14s %s\n", name, fs.Summary())
		if !*quiet {
			for _, f := range fs.List {
				if f.Sev == analyze.SevInfo && !*verbose {
					continue
				}
				fmt.Printf("   %s\n", f)
				if *radius > 0 && f.PC >= 0 && f.PC < len(bt.Prog.Code) {
					fmt.Print(asm.Context(bt.Prog, f.PC, *radius))
				}
			}
		}
		if *listing {
			notes := make(map[int][]string)
			for _, f := range fs.List {
				notes[f.PC] = append(notes[f.PC], f.String())
			}
			fmt.Print(asm.Listing(bt.Prog, notes))
		}
		if fs.Errors() > 0 {
			fail = true
		}
		if *workers < 2 {
			// A single worker cannot race with itself; the Racy metadata
			// describes multi-worker builds, so the cross-check would only
			// mislead here.
			if w.Racy {
				fmt.Printf("   note: racy-metadata cross-check skipped with -workers %d\n", *workers)
			}
			continue
		}
		switch {
		case w.Racy && len(races) == 0:
			fmt.Printf("   FAIL: %s is marked racy but the screen found no candidates\n", name)
			fail = true
		case !w.Racy && len(races) > 0:
			fmt.Printf("   FAIL: %s is race-free but the screen flagged %d candidate(s)\n", name, len(races))
			fail = true
		}
		for _, addr := range bt.RacyAddrs {
			if !fs.Covers(addr) {
				fmt.Printf("   FAIL: known racy cell %d is not covered by any candidate\n", addr)
				fail = true
			}
		}
	}
	if fail {
		return 1
	}
	return 0
}

func workloadNames() []string {
	all := workloads.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}
