// Command dpbench regenerates the paper's tables and figures from the
// simulator. Each experiment prints the rows the corresponding table or
// figure in the DoublePlay evaluation reports; EXPERIMENTS.md records a
// reference run.
//
// Usage:
//
//	dpbench -exp all
//	dpbench -exp overhead2          # F1: overhead with spare cores, 2 threads
//	dpbench -exp overhead4 -seed 7  # F2 with a different seed
//	dpbench -exp overhead2 -trace out.json   # timeline of every run, streamed, Perfetto-viewable
//	dpbench -exp overhead2 -metrics          # aggregate counters after the tables
//	dpbench -exp all -listen :9090           # live /metrics + /healthz while running
//	dpbench -exp all -prom metrics.prom      # dump Prometheus text format at exit
//	dpbench -exp overhead2 -guest-profile p.pb -cpuprofile cpu.pb  # guest + host profiles
//	dpbench -list                   # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"doubleplay/internal/core"
	"doubleplay/internal/exp"
	"doubleplay/internal/profile"
	"doubleplay/internal/trace"
)

func main() {
	var (
		expName     = flag.String("exp", "all", "experiment to run (see -list)")
		seed        = flag.Int64("seed", 11, "input/timing seed")
		scale       = flag.Int("scale", 1, "problem size multiplier")
		seeds       = flag.Int("seeds", 12, "seed count for the divergence experiment")
		adaptive    = flag.Bool("adaptive", false, "run every recording with the adaptive spare-slot controller")
		verifyPol   = flag.String("verify-policy", "always", "epoch verification policy for every recording: always or certified")
		minSpares   = flag.Int("min-spares", 0, "adaptive: lower bound on active spare slots (default 1)")
		maxSpares   = flag.Int("max-spares", 0, "adaptive: upper bound on active spare slots (default: the run's spares)")
		list        = flag.Bool("list", false, "list experiments and exit")
		traceOut    = flag.String("trace", "", "stream a Chrome trace_event JSON timeline of every run to this file")
		traceWin    = flag.Int("trace-window", 0, "streaming reorder window in events (0 = default)")
		traceSpan   = flag.Int64("trace-min-span", 0, "downsample: drop trace spans shorter than this many cycles")
		traceStride = flag.Int("trace-counter-stride", 0, "downsample: keep every Nth counter sample per series")
		metricsOn   = flag.Bool("metrics", false, "print the aggregate metrics registry after the experiments")
		promOut     = flag.String("prom", "", "write the metrics registry in Prometheus text format to this file")
		listen      = flag.String("listen", "", "serve /metrics and /healthz on this address while experiments run")
		guestProf   = flag.String("guest-profile", "", "write the merged deterministic guest profile of every recording (pprof format) to this file")
		cpuProf     = flag.String("cpuprofile", "", "write a host CPU profile of this process to this file")
		memProf     = flag.String("memprofile", "", "write a host heap profile of this process to this file on exit")
	)
	flag.Parse()

	// Host profiling brackets every experiment; the deferred Stop flushes
	// both files and a failed flush exits 1 like any other I/O error.
	hostProf, err := profile.StartHostProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := hostProf.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: writing host profile: %v\n", err)
			os.Exit(1)
		}
	}()

	type runner struct {
		name, desc string
		run        func(cfg exp.Config)
	}
	w := os.Stdout
	runners := []runner{
		{"table1", "T1: benchmark characteristics", func(c exp.Config) { exp.RenderTable1(w, c) }},
		{"overhead2", "F1: logging overhead with spare cores, 2 worker threads", func(c exp.Config) {
			exp.RenderOverhead(w, c, 2, 2, "F1: logging overhead with spare cores (2 threads)")
		}},
		{"overhead4", "F2: logging overhead with spare cores, 4 worker threads", func(c exp.Config) {
			exp.RenderOverhead(w, c, 4, 4, "F2: logging overhead with spare cores (4 threads)")
		}},
		{"utilized", "F3: overhead with no spare cores (both runs share the cores)", func(c exp.Config) {
			exp.RenderOverhead(w, c, 2, 0, "F3a: overhead, utilized machine (2 threads)")
			exp.RenderOverhead(w, c, 4, 0, "F3b: overhead, utilized machine (4 threads)")
		}},
		{"logsize", "T2: log sizes vs CREW order logging", func(c exp.Config) { exp.RenderLogSize(w, c) }},
		{"replay", "F4: replay speed, sequential vs epoch-parallel", func(c exp.Config) {
			exp.RenderReplaySpeed(w, c, 2)
			exp.RenderReplaySpeed(w, c, 4)
		}},
		{"epochsweep", "F5: overhead vs epoch length", func(c exp.Config) { exp.RenderEpochSweep(w, c) }},
		{"divergence", "T3: divergences and forward recovery on racy programs", func(c exp.Config) {
			exp.RenderDivergence(w, c, *seeds)
		}},
		{"sparesweep", "F6: overhead vs spare cores", func(c exp.Config) { exp.RenderSpareSweep(w, c) }},
		{"unibase", "T4: uniprocessor record/replay baseline", func(c exp.Config) {
			exp.RenderUniBaseline(w, c, 2)
			exp.RenderUniBaseline(w, c, 4)
		}},
		{"ablation", "Ablation: sync-order enforcement on/off", func(c exp.Config) { exp.RenderAblation(w, c) }},
		{"adaptive", "Ablation: fixed vs adaptive epoch length", func(c exp.Config) { exp.RenderAdaptive(w, c) }},
		{"adaptivespares", "Extension: adaptive spare-slot controller vs fixed pins", func(c exp.Config) { exp.RenderAdaptiveSpares(w, c) }},
		{"sparse", "Extension: checkpoint retention vs segment-parallel replay speed", func(c exp.Config) { exp.RenderSparseReplay(w, c) }},
		{"verifyskip", "Extension: certified verify-skip vs full verification", func(c exp.Config) {
			exp.RenderVerifySkip(w, c, 2, 2)
		}},
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-12s %s\n", r.name, r.desc)
		}
		return
	}

	cfg := exp.Config{
		Seed: *seed, Scale: *scale,
		Adaptive: *adaptive, AdaptiveMinSpares: *minSpares, AdaptiveMaxSpares: *maxSpares,
	}
	if (*minSpares != 0 || *maxSpares != 0) && !*adaptive {
		fmt.Fprintln(os.Stderr, "dpbench: -min-spares/-max-spares require -adaptive")
		os.Exit(2)
	}
	policy, err := core.ParseVerifyPolicy(*verifyPol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
		os.Exit(2)
	}
	cfg.VerifyPolicy = policy
	var stream *trace.StreamSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		stream = trace.NewStreamSink(f, *traceWin)
		if *traceSpan > 0 || *traceStride > 1 {
			stream.Downsample(*traceSpan, *traceStride)
		}
		cfg.Trace = stream
	}
	if *metricsOn || *promOut != "" || *listen != "" {
		cfg.Metrics = trace.NewRegistry()
	}
	if *guestProf != "" {
		cfg.Profile = profile.NewProfile("")
	}
	if *listen != "" {
		srv, err := trace.ServeMetrics(*listen, cfg.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dpbench: serving /metrics and /healthz on %s\n", srv.Addr)
	}
	ran := false
	for _, r := range runners {
		if *expName == "all" || *expName == r.name {
			r.run(cfg)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q (try -list)\n", *expName)
		os.Exit(2)
	}
	if stream != nil {
		if err := stream.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		extra := ""
		if n := stream.Dropped(); n > 0 {
			extra = fmt.Sprintf(", %d downsampled away", n)
		}
		fmt.Printf("\ntrace: %d events streamed -> %s (max %d buffered%s; open with https://ui.perfetto.dev)\n",
			stream.Written(), *traceOut, stream.MaxBuffered(), extra)
	}
	if *guestProf != "" {
		f, err := os.Create(*guestProf)
		if err == nil {
			if err = cfg.Profile.WritePprof(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: writing guest profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("guest profile: %d stacks, %d cycles -> %s (render with 'dptrace flame')\n",
			cfg.Profile.NumSamples(), cfg.Profile.TotalCycles(), *guestProf)
	}
	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		if err := cfg.Metrics.WritePrometheus(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: writing prometheus metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("prometheus metrics -> %s\n", *promOut)
	}
	if *metricsOn {
		fmt.Println("\nmetrics")
		fmt.Println("=======")
		cfg.Metrics.Render(os.Stdout)
	}
}
