// Command dptrace analyzes Chrome trace_event JSON timelines written by the
// recorder (dpbench -trace, doubleplay record -trace) and lints Prometheus
// text-format metric dumps (dpbench -prom).
//
// Usage:
//
//	dptrace stats trace.json           # per-track span/cycle summary
//	dptrace diff a.json b.json         # align two runs by epoch, report deltas
//	dptrace lag trace.json             # pipeline fill/drain + commit-lag slope
//	dptrace promlint metrics.prom      # check Prometheus text format
//	dptrace flame profile.pb           # top-function table of a guest profile
//	dptrace flame -folded profile.pb   # folded stacks for flamegraph renderers
//
// diff exits 0 when the timelines agree, 3 when they diverge (the first
// divergent epoch and per-epoch cycle deltas are printed either way).
// lag replaces the by-eye Perfetto read-off of docs/OBSERVABILITY.md's F6
// worked example: per pipeline track it reports verify occupancy and the
// least-squares slope of commit lag over epoch index, plus the drain tail
// after the last thread-parallel boundary.
// flame reads the pprof-format guest profiles written by -guest-profile
// (doubleplay record/replay/verify, dpbench) and renders either a
// top-function table (-top N rows, default 20) or folded stacks in the
// flamegraph.pl input format.
package main

import (
	"fmt"
	"os"
	"strconv"

	"doubleplay/internal/dptrace"
	"doubleplay/internal/profile"
	"doubleplay/internal/trace"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dptrace stats <trace.json>
  dptrace diff <a.json> <b.json>
  dptrace lag <trace.json>
  dptrace promlint <metrics.prom>
  dptrace flame [-folded] [-top N] <profile.pb>
`)
	os.Exit(2)
}

func parseTrace(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dptrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	evs, err := trace.ParseJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dptrace: %s: %v\n", path, err)
		os.Exit(1)
	}
	return evs
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "stats":
		if len(os.Args) != 3 {
			usage()
		}
		dptrace.Stats(parseTrace(os.Args[2])).Render(os.Stdout)
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		rep := dptrace.Diff(os.Args[2], parseTrace(os.Args[2]), os.Args[3], parseTrace(os.Args[3]))
		rep.Render(os.Stdout)
		if rep.FirstDivergent >= 0 {
			os.Exit(3)
		}
	case "lag":
		if len(os.Args) != 3 {
			usage()
		}
		reps := dptrace.Lag(parseTrace(os.Args[2]))
		if len(reps) == 0 {
			fmt.Fprintln(os.Stderr, "dptrace: no recording process with epoch.commit events in trace")
			os.Exit(1)
		}
		for i, rep := range reps {
			if i > 0 {
				fmt.Println()
			}
			rep.Render(os.Stdout)
		}
	case "flame":
		flame(os.Args[2:])
	case "promlint":
		if len(os.Args) != 3 {
			usage()
		}
		data, err := os.ReadFile(os.Args[2])
		if err != nil {
			fmt.Fprintf(os.Stderr, "dptrace: %v\n", err)
			os.Exit(1)
		}
		problems := dptrace.Promlint(string(data))
		for _, p := range problems {
			fmt.Println(p)
		}
		if len(problems) > 0 {
			fmt.Printf("%d problem(s)\n", len(problems))
			os.Exit(1)
		}
		fmt.Println("ok")
	default:
		usage()
	}
}

// flame renders a guest pprof profile: the default is a top-function
// table, -folded switches to flamegraph.pl's folded-stack input format.
func flame(args []string) {
	folded := false
	top := 20
	var path string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-folded":
			folded = true
		case "-top":
			i++
			if i >= len(args) {
				usage()
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n <= 0 {
				usage()
			}
			top = n
		default:
			if path != "" {
				usage()
			}
			path = args[i]
		}
	}
	if path == "" {
		usage()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dptrace: %v\n", err)
		os.Exit(1)
	}
	prof, err := profile.ParsePprof(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dptrace: %s: %v\n", path, err)
		os.Exit(1)
	}
	if folded {
		if err := prof.WriteFolded(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dptrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := prof.RenderTop(os.Stdout, top); err != nil {
		fmt.Fprintf(os.Stderr, "dptrace: %v\n", err)
		os.Exit(1)
	}
}
