// Command dptrace analyzes Chrome trace_event JSON timelines written by the
// recorder (dpbench -trace, doubleplay record -trace) and lints Prometheus
// text-format metric dumps (dpbench -prom).
//
// Usage:
//
//	dptrace stats trace.json           # per-track span/cycle summary
//	dptrace diff a.json b.json         # align two runs by epoch, report deltas
//	dptrace lag trace.json             # pipeline fill/drain + commit-lag slope
//	dptrace promlint metrics.prom      # check Prometheus text format
//
// diff exits 0 when the timelines agree, 3 when they diverge (the first
// divergent epoch and per-epoch cycle deltas are printed either way).
// lag replaces the by-eye Perfetto read-off of docs/OBSERVABILITY.md's F6
// worked example: per pipeline track it reports verify occupancy and the
// least-squares slope of commit lag over epoch index, plus the drain tail
// after the last thread-parallel boundary.
package main

import (
	"fmt"
	"os"

	"doubleplay/internal/dptrace"
	"doubleplay/internal/trace"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dptrace stats <trace.json>
  dptrace diff <a.json> <b.json>
  dptrace lag <trace.json>
  dptrace promlint <metrics.prom>
`)
	os.Exit(2)
}

func parseTrace(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dptrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	evs, err := trace.ParseJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dptrace: %s: %v\n", path, err)
		os.Exit(1)
	}
	return evs
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "stats":
		if len(os.Args) != 3 {
			usage()
		}
		dptrace.Stats(parseTrace(os.Args[2])).Render(os.Stdout)
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		rep := dptrace.Diff(os.Args[2], parseTrace(os.Args[2]), os.Args[3], parseTrace(os.Args[3]))
		rep.Render(os.Stdout)
		if rep.FirstDivergent >= 0 {
			os.Exit(3)
		}
	case "lag":
		if len(os.Args) != 3 {
			usage()
		}
		reps := dptrace.Lag(parseTrace(os.Args[2]))
		if len(reps) == 0 {
			fmt.Fprintln(os.Stderr, "dptrace: no recording process with epoch.commit events in trace")
			os.Exit(1)
		}
		for i, rep := range reps {
			if i > 0 {
				fmt.Println()
			}
			rep.Render(os.Stdout)
		}
	case "promlint":
		if len(os.Args) != 3 {
			usage()
		}
		data, err := os.ReadFile(os.Args[2])
		if err != nil {
			fmt.Fprintf(os.Stderr, "dptrace: %v\n", err)
			os.Exit(1)
		}
		problems := dptrace.Promlint(string(data))
		for _, p := range problems {
			fmt.Println(p)
		}
		if len(problems) > 0 {
			fmt.Printf("%d problem(s)\n", len(problems))
			os.Exit(1)
		}
		fmt.Println("ok")
	default:
		usage()
	}
}
