// Command dpdebug is the time-travel debugger over .dplog recordings:
// deterministic replay makes every point of a recorded execution
// reachable bit-identically, so the debugger can step forwards and
// BACKWARDS, watch guest memory words in either direction, and bisect
// where two recordings of a racy program first diverge.
//
// Usage:
//
//	dpdebug repl   -log a.dplog [-w name] [-workers N] [-scale N] [-seed S] [-watch addr]...
//	dpdebug bisect -a a.dplog -b b.dplog [-json]
//	dpdebug diff   -a a.dplog -b b.dplog -epoch N [-json]
//
// The workload is rebuilt from the log header (program, workers, seed);
// pass -w/-workers/-seed only to override, -scale when the recording
// was made with a non-default problem size. -decode loads the fully
// decoded recording instead of seeking sections out of the log — the
// two byte paths produce byte-identical output, which verify.sh checks.
//
// Exit codes follow the doubleplay/dptrace convention:
//
//	0  ok (repl quit; bisect/diff found no divergence)
//	1  usage or I/O error
//	2  debug assertion failure (recording and program disagree)
//	3  divergence found (bisect/diff)
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"doubleplay/internal/debug"
	"doubleplay/internal/dplog"
	"doubleplay/internal/replay"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dpdebug repl   -log a.dplog [-w name] [-workers N] [-scale N] [-seed S] [-decode] [-watch addr]...
  dpdebug bisect -a a.dplog -b b.dplog [-json] [-decode] [-scale N]
  dpdebug diff   -a a.dplog -b b.dplog -epoch N [-json] [-decode] [-scale N]
`)
	os.Exit(1)
}

func fatalIO(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dpdebug: "+format+"\n", args...)
	os.Exit(1)
}

func fatalAssert(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dpdebug: assertion: "+format+"\n", args...)
	os.Exit(2)
}

// watchList collects repeated -watch flags.
type watchList []vm.Word

func (w *watchList) String() string { return fmt.Sprint(*w) }
func (w *watchList) Set(s string) error {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return err
	}
	*w = append(*w, vm.Word(v))
	return nil
}

// openSession opens path as a debug session, rebuilding the workload
// from the log header with flag overrides. decode selects the decoded
// recording over the seekable reader as the session's byte source.
func openSession(path, wlName string, workers, scale int, seed int64, decode bool) *debug.Session {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalIO("%v", err)
	}
	rd, err := dplog.OpenReaderBytes(data)
	if err != nil {
		fatalIO("%s: %v", path, err)
	}
	h := rd.Header()
	if wlName == "" {
		wlName = h.Program
	}
	if h.Workers > 0 {
		workers = h.Workers
	}
	if h.Seed != 0 {
		seed = h.Seed
	}
	wl := workloads.Get(wlName)
	if wl == nil {
		fatalIO("%s: unknown workload %q (override with -w)", path, wlName)
	}
	bt := wl.Build(workloads.Params{Workers: workers, Scale: scale, Seed: seed})
	src := replay.Source(nil)
	if decode {
		rec, err := rd.Recording()
		if err != nil {
			fatalIO("%s: %v", path, err)
		}
		src = replay.FromRecording(rec)
	} else {
		src = replay.FromReader(rd)
	}
	s, err := debug.New(bt.Prog, src, nil)
	if err != nil {
		fatalAssert("%s: %v", path, err)
	}
	return s
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet("dpdebug "+cmd, flag.ExitOnError)
	fs.Usage = usage
	var (
		logPath = fs.String("log", "", "recording to debug (repl)")
		pathA   = fs.String("a", "", "first recording (bisect/diff)")
		pathB   = fs.String("b", "", "second recording (bisect/diff)")
		wlName  = fs.String("w", "", "workload override (default: log header)")
		workers = fs.Int("workers", 0, "worker override (default: log header)")
		scale   = fs.Int("scale", 1, "problem size multiplier the recording was made with")
		seed    = fs.Int64("seed", 0, "seed override (default: log header)")
		decode  = fs.Bool("decode", false, "decode the whole recording instead of seeking the log")
		asJSON  = fs.Bool("json", false, "machine-readable output (bisect/diff)")
		epochN  = fs.Int("epoch", -1, "boundary to diff (diff)")
		watches watchList
	)
	fs.Var(&watches, "watch", "arm a watchpoint at guest address (repeatable; repl)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}

	switch cmd {
	case "repl":
		if *logPath == "" {
			usage()
		}
		s := openSession(*logPath, *wlName, *workers, *scale, *seed, *decode)
		for _, a := range watches {
			s.AddWatch(a)
		}
		repl(s)
	case "bisect", "diff":
		if *pathA == "" || *pathB == "" {
			usage()
		}
		if cmd == "diff" && *epochN < 0 {
			usage()
		}
		sa := openSession(*pathA, *wlName, *workers, *scale, *seed, *decode)
		sb := openSession(*pathB, *wlName, *workers, *scale, *seed, *decode)
		var res *debug.BisectResult
		var err error
		if cmd == "bisect" {
			res, err = debug.Bisect(sa, sb)
		} else {
			var d *debug.StateDiff
			d, err = debug.DiffAt(sa, sb, *epochN)
			if err == nil {
				res = &debug.BisectResult{
					Diverged: !d.Equal, Epoch: d.Epoch,
					EpochsA: sa.NumEpochs(), EpochsB: sb.NumEpochs(),
					HashA: d.HashA, HashB: d.HashB, Diff: d,
				}
			}
		}
		if err != nil {
			fatalAssert("%v", err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fatalIO("%v", err)
			}
		} else {
			renderBisect(os.Stdout, *pathA, *pathB, res)
		}
		if res.Diverged {
			os.Exit(3)
		}
	default:
		usage()
	}
}

// renderBisect prints the human-readable divergence report.
func renderBisect(w *os.File, pathA, pathB string, res *debug.BisectResult) {
	fmt.Fprintf(w, "a: %s (%d epochs)\n", pathA, res.EpochsA)
	fmt.Fprintf(w, "b: %s (%d epochs)\n", pathB, res.EpochsB)
	switch {
	case !res.Diverged:
		fmt.Fprintf(w, "no divergence: recordings agree at every epoch boundary\n")
		return
	case res.Tail:
		fmt.Fprintf(w, "tail divergence: every common boundary agrees, but the epoch counts differ (%d vs %d)\n",
			res.EpochsA, res.EpochsB)
		return
	}
	fmt.Fprintf(w, "first divergent boundary: epoch %d (hash %s vs %s)\n", res.Epoch, res.HashA, res.HashB)
	if res.Epoch > 0 {
		fmt.Fprintf(w, "boundary %d agrees: the executions diverged inside epoch %d\n", res.Epoch-1, res.Epoch-1)
	}
	d := res.Diff
	if d == nil {
		return
	}
	fmt.Fprintf(w, "threads: %d vs %d, %d differ\n", d.ThreadsA, d.ThreadsB, len(d.Threads))
	for _, td := range d.Threads {
		switch td.OnlyIn {
		case "a":
			fmt.Fprintf(w, "  tid %d only in a: pc %d (%s) retired %d %s\n", td.Tid, td.PCA, td.FuncA, td.RetiredA, td.StatusA)
		case "b":
			fmt.Fprintf(w, "  tid %d only in b: pc %d (%s) retired %d %s\n", td.Tid, td.PCB, td.FuncB, td.RetiredB, td.StatusB)
		default:
			fmt.Fprintf(w, "  tid %d: pc %d (%s) vs %d (%s); retired %d vs %d; status %s vs %s; %d regs differ\n",
				td.Tid, td.PCA, td.FuncA, td.PCB, td.FuncB, td.RetiredA, td.RetiredB, td.StatusA, td.StatusB, len(td.RegsDiffer))
		}
	}
	fmt.Fprintf(w, "memory: %d words differ across %d pages\n", d.WordsDiffer, d.PagesDiffer)
	for _, wd := range d.Words {
		fmt.Fprintf(w, "  [%#x] %d vs %d\n", uint64(wd.Addr), uint64(wd.A), uint64(wd.B))
	}
	if d.WordsDiffer > len(d.Words) {
		fmt.Fprintf(w, "  ... %d more\n", d.WordsDiffer-len(d.Words))
	}
}

// where prints the current stop point and what runs next.
func where(s *debug.Session) {
	fmt.Printf("at %s cycle %d hash %016x", s.Position(), s.Cycles(), s.StateHash())
	if tid, ok := s.NextTid(); ok {
		t := s.Thread(tid)
		fmt.Printf("; next tid %d pc %d (%s)", tid, t.PC, s.FuncName(t.PC))
	} else if s.AtEnd() {
		fmt.Printf("; end of recording")
	}
	fmt.Println()
}

// printEvent prints one retired instruction.
func printEvent(s *debug.Session, ev replay.StepEvent) {
	sig := ""
	if ev.Signal {
		sig = " signal"
	}
	fmt.Printf("tid %d pc %d (%s)%s -> %s\n", ev.Tid, ev.PC, s.FuncName(ev.PC), sig, s.Position())
}

// printHits prints the watch hits of the last stop.
func printHits(s *debug.Session, hits []debug.Hit) {
	for _, h := range hits {
		fmt.Printf("watch hit [%#x]: %d -> %d at %s (tid %d pc %d %s)\n",
			uint64(h.Addr), uint64(h.Old), uint64(h.New), h.Pos, h.Tid, h.PC, s.FuncName(h.PC))
	}
}

// motionErr handles a motion command's error: boundary bumps are
// ordinary, anything else poisons the session (exit 2).
func motionErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, debug.ErrAtStart) || errors.Is(err, debug.ErrAtEnd) {
		fmt.Println(err)
		return true
	}
	fatalAssert("%v", err)
	return true
}

// parseNum parses a decimal/hex number argument.
func parseNum(s string) (uint64, error) { return strconv.ParseUint(s, 0, 64) }

// argOr returns the optional numeric argument or def.
func argOr(args []string, def uint64) uint64 {
	if len(args) == 0 {
		return def
	}
	v, err := parseNum(args[0])
	if err != nil {
		fmt.Printf("bad number %q\n", args[0])
		return def
	}
	return v
}

func replHelp() {
	fmt.Print(`commands:
  info                 recording summary
  where                current position, cycle, state hash
  threads              all threads
  run <epoch>          position at an epoch boundary
  runc <cycle>         position at a cycle count
  step|s [n]           retire n instructions (default 1)
  next|n               step over calls
  rstep|rs [n]         reverse-step n instructions
  continue|c           run forward to the next watch hit
  rcontinue|rc         run backward to the previous watch hit
  watch <addr>         arm a data watchpoint (hex or decimal)
  unwatch <addr>       disarm it
  watches              list watchpoints
  regs [tid]           register file (default: next thread)
  mem <addr> [n]       dump n guest words (default 8)
  stack [tid]          guest call stack (default: next thread)
  quit|q               exit
`)
}

// repl drives the interactive (or piped) command loop.
func repl(s *debug.Session) {
	fmt.Printf("%s: %d epochs, %d threads at entry\n", s.Program(), s.NumEpochs(), len(s.Threads()))
	where(s)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Fprint(os.Stderr, "(dpdebug) ")
		if !sc.Scan() {
			fmt.Fprintln(os.Stderr)
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "q", "exit":
			return
		case "help", "h", "?":
			replHelp()
		case "info":
			fmt.Printf("program %s: %d epochs, %d threads, position %s, cycle %d\n",
				s.Program(), s.NumEpochs(), len(s.Threads()), s.Position(), s.Cycles())
			fmt.Printf("watches: %d armed\n", len(s.Watches()))
		case "where", "w":
			where(s)
		case "threads":
			for _, t := range s.Threads() {
				fmt.Printf("tid %d: pc %d (%s) %s retired %d depth %d\n",
					t.ID, t.PC, s.FuncName(t.PC), t.Status, t.Retired, len(t.Frames))
			}
		case "run":
			if len(args) != 1 {
				fmt.Println("usage: run <epoch>")
				continue
			}
			e, err := parseNum(args[0])
			if err != nil {
				fmt.Printf("bad epoch %q\n", args[0])
				continue
			}
			if motionErr(s.RunToEpoch(int(e))) {
				continue
			}
			where(s)
		case "runc":
			if len(args) != 1 {
				fmt.Println("usage: runc <cycle>")
				continue
			}
			c, err := parseNum(args[0])
			if err != nil {
				fmt.Printf("bad cycle %q\n", args[0])
				continue
			}
			if motionErr(s.RunToCycle(int64(c))) {
				continue
			}
			where(s)
		case "step", "s":
			n := argOr(args, 1)
			for i := uint64(0); i < n; i++ {
				ev, err := s.Step()
				if motionErr(err) {
					break
				}
				printEvent(s, ev)
				printHits(s, s.LastHits())
			}
		case "next", "n":
			ev, err := s.StepOver()
			if motionErr(err) {
				continue
			}
			printEvent(s, ev)
			printHits(s, s.LastHits())
		case "rstep", "rs":
			n := argOr(args, 1)
			for i := uint64(0); i < n; i++ {
				if motionErr(s.ReverseStep()) {
					break
				}
			}
			where(s)
		case "continue", "c":
			hits, err := s.Continue()
			if motionErr(err) {
				continue
			}
			if hits == nil {
				fmt.Println("end of recording reached")
			}
			printHits(s, hits)
			where(s)
		case "rcontinue", "rc":
			hits, err := s.ReverseContinue()
			if motionErr(err) {
				continue
			}
			if hits == nil {
				fmt.Println("start of recording reached")
			}
			printHits(s, hits)
			where(s)
		case "watch":
			if len(args) != 1 {
				fmt.Println("usage: watch <addr>")
				continue
			}
			a, err := parseNum(args[0])
			if err != nil {
				fmt.Printf("bad address %q\n", args[0])
				continue
			}
			s.AddWatch(vm.Word(a))
			fmt.Printf("watching [%#x]\n", a)
		case "unwatch":
			if len(args) != 1 {
				fmt.Println("usage: unwatch <addr>")
				continue
			}
			a, err := parseNum(args[0])
			if err != nil {
				fmt.Printf("bad address %q\n", args[0])
				continue
			}
			if s.RemoveWatch(vm.Word(a)) {
				fmt.Printf("unwatched [%#x]\n", a)
			} else {
				fmt.Printf("no watch at [%#x]\n", a)
			}
		case "watches":
			for _, a := range s.Watches() {
				fmt.Printf("[%#x] = %d\n", uint64(a), uint64(s.ReadMemory(a, 1)[0]))
			}
		case "regs":
			tid := defaultTid(s, args)
			t := s.Thread(tid)
			if t == nil {
				fmt.Printf("no thread %d\n", tid)
				continue
			}
			fmt.Printf("tid %d pc %d (%s) %s retired %d\n", t.ID, t.PC, s.FuncName(t.PC), t.Status, t.Retired)
			for r := 0; r < vm.NumRegs; r += 8 {
				fmt.Printf("r%-2d:", r)
				for k := r; k < r+8; k++ {
					fmt.Printf(" %d", int64(t.Regs[k]))
				}
				fmt.Println()
			}
		case "mem":
			if len(args) < 1 {
				fmt.Println("usage: mem <addr> [n]")
				continue
			}
			a, err := parseNum(args[0])
			if err != nil {
				fmt.Printf("bad address %q\n", args[0])
				continue
			}
			n := argOr(args[1:], 8)
			for i, v := range s.ReadMemory(vm.Word(a), int(n)) {
				fmt.Printf("[%#x] %d\n", a+uint64(i), uint64(v))
			}
		case "stack":
			tid := defaultTid(s, args)
			frames, err := s.Stack(tid)
			if err != nil {
				fmt.Println(err)
				continue
			}
			for i := len(frames) - 1; i >= 0; i-- {
				fmt.Printf("#%d %s\n", len(frames)-1-i, frames[i])
			}
		case "hash":
			fmt.Printf("%016x\n", s.StateHash())
		default:
			fmt.Printf("unknown command %q (try help)\n", cmd)
		}
	}
}

// defaultTid resolves an optional tid argument, defaulting to the next
// scheduled thread.
func defaultTid(s *debug.Session, args []string) int {
	if len(args) > 0 {
		if v, err := parseNum(args[0]); err == nil {
			return int(v)
		}
	}
	if tid, ok := s.NextTid(); ok {
		return tid
	}
	return 0
}
