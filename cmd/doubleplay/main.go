// Command doubleplay records, replays, verifies, and inspects executions of
// the builtin benchmark suite.
//
// Usage:
//
//	doubleplay list
//	doubleplay record  -w pbzip -workers 4 -spares 4 -o pbzip.dplog
//	doubleplay record  -w pbzip -trace t.json -listen :9090  # streamed trace + live /metrics
//	doubleplay replay  -w pbzip -workers 4 -log pbzip.dplog [-parallel]
//	doubleplay verify  -w pbzip -workers 4          # record + both replays in memory
//	doubleplay inspect -log pbzip.dplog
//	doubleplay disasm  -w fft
//	doubleplay races   -w webserve-racy -workers 4  # happens-before race report
package main

import (
	"flag"
	"fmt"
	"os"

	"doubleplay/internal/asm"
	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
	"doubleplay/internal/race"
	"doubleplay/internal/replay"
	"doubleplay/internal/sched"
	"doubleplay/internal/simos"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		wlName   = fs.String("w", "", "workload name (see 'doubleplay list')")
		workers  = fs.Int("workers", 2, "guest worker threads")
		spares   = fs.Int("spares", 0, "spare cores for the epoch pipeline (default: workers)")
		scale    = fs.Int("scale", 1, "problem size multiplier")
		seed     = fs.Int64("seed", 11, "input/timing seed")
		epochLen = fs.Int64("epoch", core.DefaultEpochCycles, "epoch length in cycles")
		logPath  = fs.String("log", "", "recording file to read")
		outPath  = fs.String("o", "", "recording file to write")
		parallel = fs.Bool("parallel", false, "replay epochs in parallel (verify-time only)")
		stride   = fs.Int("stride", 0, "also verify sparse segment-parallel replay with this checkpoint stride")
		detect   = fs.Bool("detect-races", false, "run the happens-before detector during recording")
		growth   = fs.Float64("growth", 1, "adaptive epoch growth factor (>1 enables)")
		traceOut = fs.String("trace", "", "stream a Chrome trace_event JSON timeline to this file (record/verify/replay)")
		traceWin = fs.Int("trace-window", 0, "streaming reorder window in events (0 = default)")
		metrics  = fs.Bool("metrics", false, "print the metrics registry after the run (record/verify)")
		promOut  = fs.String("prom", "", "write the metrics registry in Prometheus text format to this file (record/verify)")
		listen   = fs.String("listen", "", "serve /metrics and /healthz on this address while the run executes")
	)
	fs.Parse(args)
	if *spares == 0 {
		*spares = *workers
	}
	// The trace streams to disk as the run executes, holding only a bounded
	// reorder window in memory; Close finishes the JSON document.
	var sink trace.Recorder
	var stream *trace.StreamSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		check(err)
		stream = trace.NewStreamSink(f, *traceWin)
		sink = stream
		defer f.Close()
	}
	var reg *trace.Registry
	if *metrics || *promOut != "" || *listen != "" {
		reg = trace.NewRegistry()
	}
	if *listen != "" {
		srv, err := trace.ServeMetrics(*listen, reg)
		check(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "doubleplay: serving /metrics and /healthz on %s\n", srv.Addr)
	}
	// Written at the end of record/verify/replay when -trace was given.
	flushTrace := func() {
		if stream == nil {
			return
		}
		check(stream.Close())
		fmt.Printf("trace: %d events streamed -> %s (max %d buffered; open with https://ui.perfetto.dev)\n",
			stream.Written(), *traceOut, stream.MaxBuffered())
	}
	flushMetrics := func() {
		if *promOut != "" {
			f, err := os.Create(*promOut)
			check(err)
			check(reg.WritePrometheus(f))
			check(f.Close())
			fmt.Printf("prometheus metrics -> %s\n", *promOut)
		}
		if !*metrics {
			return
		}
		fmt.Println("metrics:")
		reg.Render(os.Stdout)
	}

	switch cmd {
	case "list":
		for _, w := range workloads.All() {
			racy := ""
			if w.Racy {
				racy = " [racy]"
			}
			fmt.Printf("%-14s %-10s%s %s\n", w.Name, w.Kind, racy, w.Desc)
		}

	case "record":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		res := mustRecord(bt, *workers, *spares, *epochLen, *seed, *growth, *detect, sink, reg)
		printStats(*wlName, res)
		printRaces(res)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			check(err)
			check(dplog.Marshal(f, res.Recording))
			check(f.Close())
			fmt.Printf("wrote %s (%d bytes replay log)\n", *outPath, res.Stats.ReplayBytes)
		}
		flushTrace()
		flushMetrics()

	case "replay":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		if *logPath == "" {
			fatal("replay requires -log (or use 'verify' for an in-memory round trip)")
		}
		f, err := os.Open(*logPath)
		check(err)
		rec, err := dplog.Unmarshal(f)
		check(err)
		check(f.Close())
		rep, err := replay.Sequential(bt.Prog, rec, nil, sink)
		check(err)
		fmt.Printf("replayed %d epochs in %d simulated cycles; final hash %016x verified\n",
			rep.Epochs, rep.Cycles, rep.FinalHash)
		flushTrace()

	case "verify":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		res := mustRecord(bt, *workers, *spares, *epochLen, *seed, *growth, *detect, sink, reg)
		printStats(*wlName, res)
		printRaces(res)
		seq, err := replay.Sequential(bt.Prog, res.Recording, nil, sink)
		check(err)
		fmt.Printf("sequential replay: OK (%d cycles)\n", seq.Cycles)
		if *parallel {
			par, err := replay.Parallel(bt.Prog, res.Recording, res.Boundaries, *workers, nil, sink)
			check(err)
			fmt.Printf("parallel replay:   OK (%d cycles on %d cores)\n", par.Cycles, *workers)
		}
		if *stride > 1 {
			sparse := res.ThinBoundaries(*stride)
			sp, err := replay.ParallelSparse(bt.Prog, res.Recording, sparse, *workers, nil, sink)
			check(err)
			fmt.Printf("sparse replay:     OK (stride %d, %d of %d checkpoints kept, %d cycles)\n",
				*stride, len(sparse), len(res.Recording.Epochs)+1, sp.Cycles)
		}
		last := res.Boundaries[len(res.Boundaries)-1]
		if err := bt.CheckOK(last.CP.MemSnap.Peek); err != nil {
			fatal(err.Error())
		}
		fmt.Println("guest self-check:  OK")
		flushTrace()
		flushMetrics()

	case "inspect":
		if *logPath == "" {
			fatal("inspect requires -log")
		}
		f, err := os.Open(*logPath)
		check(err)
		rec, err := dplog.Unmarshal(f)
		check(err)
		check(f.Close())
		fmt.Println(rec)
		for _, ep := range rec.Epochs {
			fmt.Printf("  epoch %3d: %4d slices, %4d syscalls, %2d signals, %4d sync ops, %d threads, end %016x commit %016x\n",
				ep.Index, len(ep.Schedule), len(ep.Syscalls), len(ep.Signals), len(ep.SyncOrder), len(ep.Targets), ep.EndHash, ep.CommitHash)
		}

	case "disasm":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		fmt.Print(asm.Disassemble(bt.Prog))

	case "races":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		det := race.NewDetector(0)
		m := vm.NewMachine(bt.Prog, simos.NewOS(bt.World), nil)
		m.Hooks.OnSync = det.OnSync
		m.Hooks.OnMemAccess = det.OnMemAccess
		uni := sched.NewUni(m)
		check(uni.Run())
		reports := det.Races()
		if len(reports) == 0 {
			fmt.Println("no data races detected")
			return
		}
		fmt.Printf("%d racy addresses:\n", len(reports))
		for _, r := range reports {
			fmt.Println("  " + r.String())
		}

	default:
		usage()
		os.Exit(2)
	}
}

func mustBuild(name string, workers, scale int, seed int64) *workloads.Built {
	if name == "" {
		fatal("missing -w <workload>; see 'doubleplay list'")
	}
	wl := workloads.Get(name)
	if wl == nil {
		fatal(fmt.Sprintf("unknown workload %q; see 'doubleplay list'", name))
	}
	return wl.Build(workloads.Params{Workers: workers, Scale: scale, Seed: seed})
}

func mustRecord(bt *workloads.Built, workers, spares int, epochLen, seed int64, growth float64, detect bool, sink trace.Recorder, reg *trace.Registry) *core.Result {
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers:     workers,
		RecordCPUs:  workers,
		SpareCPUs:   spares,
		EpochCycles: epochLen,
		Seed:        seed,
		EpochGrowth: growth,
		DetectRaces: detect,
		Trace:       sink,
		Metrics:     reg,
	})
	check(err)
	return res
}

func printRaces(res *core.Result) {
	if res.Races == nil {
		return
	}
	fmt.Printf("  races: %d racy addresses detected during recording\n", len(res.Races))
	for i, r := range res.Races {
		if i == 5 {
			fmt.Printf("    ...\n")
			break
		}
		fmt.Printf("    %s\n", r)
	}
}

func printStats(name string, res *core.Result) {
	s := res.Stats
	fmt.Printf("recorded %s: %d epochs, %d instrs, %d syscalls, %d sync ops, %d slices\n",
		name, s.Epochs, s.Retired, s.Syscalls, s.SyncEvents, s.Slices)
	fmt.Printf("  time: thread-parallel %d cyc, completion %d cyc; divergences %d (adopt %d, rerun %d)\n",
		s.ThreadParallelCycles, s.CompletionCycles, s.Divergences, s.HashRecoveries, s.RerunRecoveries)
	fmt.Printf("  log: %d bytes replay, %d bytes with sync order\n", s.ReplayBytes, s.FullBytes)
	for _, d := range res.Divergences {
		switch d.Kind {
		case "state":
			fmt.Printf("  divergence @epoch %d: states disagreed on pages %v\n", d.Epoch, d.Pages)
		default:
			fmt.Printf("  divergence @epoch %d: %s\n", d.Epoch, d.Reason)
		}
	}
}

func check(err error) {
	if err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "doubleplay: "+msg)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: doubleplay <command> [flags]

commands:
  list     show the builtin benchmark suite
  record   record a workload (optionally -o file.dplog)
  replay   replay a recording from -log against a rebuilt workload
  verify   record + replay in memory, checking every hash and the guest self-check
  inspect  print a recording's per-epoch log structure
  disasm   disassemble a workload's guest program
  races    run the happens-before detector over a workload`)
}
