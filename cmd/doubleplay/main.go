// Command doubleplay records, replays, verifies, and inspects executions of
// the builtin benchmark suite.
//
// Usage:
//
//	doubleplay list
//	doubleplay record  -w pbzip -workers 4 -spares 4 -o pbzip.dplog
//	doubleplay record  -w pbzip -trace t.json -listen :9090  # streamed trace + live /metrics
//	doubleplay record  -w pbzip -adaptive -min-spares 1 -max-spares 4  # feedback-controlled spares
//	doubleplay record  -w pbzip -guest-profile p.pb  # deterministic guest cycle profile
//	doubleplay replay  -w pbzip -workers 4 -log pbzip.dplog [-parallel]
//	doubleplay verify  -w pbzip -workers 4          # record + both replays in memory
//	doubleplay verify  -w pbzip -guest-profile p.pb # + replay-vs-record profile identity
//	doubleplay serve   -listen :8421 -pprof         # job daemon + /debug/pprof
//	doubleplay inspect -log pbzip.dplog
//	doubleplay log inspect -log pbzip.dplog         # section table + index health
//	doubleplay log upgrade -log old.dplog           # migrate v4/v5 logs to v6 in place
//	doubleplay log extract -log pbzip.dplog -epochs 3..5 -o sub.dplog
//	doubleplay disasm  -w fft
//	doubleplay races   -w webserve-racy -workers 4  # happens-before race report
//	doubleplay serve   -listen :8421 -data ./dpdata # record/replay job daemon
//
// Exit codes are uniform across subcommands: 0 success, 1 runtime failure
// (divergence, I/O error, failed self-check), 2 invocation error (unknown
// command, bad flags, missing arguments — always with usage on stderr).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"doubleplay/internal/asm"
	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
	"doubleplay/internal/profile"
	"doubleplay/internal/race"
	"doubleplay/internal/replay"
	"doubleplay/internal/sched"
	"doubleplay/internal/server"
	"doubleplay/internal/simos"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usageErr("missing command")
	}
	cmd, args := os.Args[1], os.Args[2:]
	// The `log` group nests one level: fold "log inspect" into a single
	// command name before flag parsing.
	if cmd == "log" {
		if len(args) == 0 {
			usageErr("log requires a subcommand: inspect, upgrade, extract")
		}
		cmd, args = "log "+args[0], args[1:]
	}
	// The `store` group nests the same way.
	if cmd == "store" {
		if len(args) == 0 {
			usageErr("store requires a subcommand: stats, gc, fsck")
		}
		cmd, args = "store "+args[0], args[1:]
	}

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		wlName      = fs.String("w", "", "workload name (see 'doubleplay list')")
		workers     = fs.Int("workers", 2, "guest worker threads")
		spares      = fs.Int("spares", 0, "spare cores for the epoch pipeline (default: workers)")
		scale       = fs.Int("scale", 1, "problem size multiplier")
		seed        = fs.Int64("seed", 11, "input/timing seed")
		epochLen    = fs.Int64("epoch", core.DefaultEpochCycles, "epoch length in cycles")
		logPath     = fs.String("log", "", "recording file to read")
		outPath     = fs.String("o", "", "recording file to write")
		epochRange  = fs.String("epochs", "", "log extract: epoch range, n or n..m")
		parallel    = fs.Bool("parallel", false, "replay epochs in parallel (verify-time only)")
		stride      = fs.Int("stride", 0, "also verify sparse segment-parallel replay with this checkpoint stride")
		detect      = fs.Bool("detect-races", false, "run the happens-before detector during recording")
		verifyPol   = fs.String("verify-policy", "always", "epoch verification policy: always, or certified (skip the epoch-parallel pass when the static certificate proves the guest race-free)")
		growth      = fs.Float64("growth", 1, "adaptive epoch growth factor (>1 enables)")
		adaptive    = fs.Bool("adaptive", false, "grow/shrink active spare slots at run time from the commit-lag signal")
		minSpares   = fs.Int("min-spares", 0, "adaptive: lower bound on active spare slots (default 1)")
		maxSpares   = fs.Int("max-spares", 0, "adaptive: upper bound on active spare slots (default -spares)")
		traceOut    = fs.String("trace", "", "stream a Chrome trace_event JSON timeline to this file (record/verify/replay)")
		traceWin    = fs.Int("trace-window", 0, "streaming reorder window in events (0 = default)")
		traceSpan   = fs.Int64("trace-min-span", 0, "downsample: drop trace spans shorter than this many cycles")
		traceStride = fs.Int("trace-counter-stride", 0, "downsample: keep every Nth counter sample per series")
		metrics     = fs.Bool("metrics", false, "print the metrics registry after the run (record/verify)")
		promOut     = fs.String("prom", "", "write the metrics registry in Prometheus text format to this file (record/verify)")
		listen      = fs.String("listen", "", "serve /metrics and /healthz on this address while the run executes (serve: the API address)")
		guestProf   = fs.String("guest-profile", "", "write the deterministic guest cycle profile (pprof format) to this file (record/replay/verify; render with 'dptrace flame')")
		cpuProf     = fs.String("cpuprofile", "", "write a host CPU profile of this process to this file")
		memProf     = fs.String("memprofile", "", "write a host heap profile of this process to this file on exit")

		// serve-only flags.
		pprofFlag    = fs.Bool("pprof", false, "serve: expose net/http/pprof under /debug/pprof on the API address")
		dataDir      = fs.String("data", "dpdata", "serve: artifact store directory (blobs + per-job artifacts)")
		pool         = fs.Int("pool", 2, "serve: worker pool size (concurrent jobs)")
		queueDepth   = fs.Int("queue", 16, "serve: queued-job limit before submissions get 429")
		jobTimeout   = fs.Duration("job-timeout", 2*time.Minute, "serve: default per-job timeout (0 disables; specs may override)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "serve: how long shutdown waits for running jobs before canceling them")
		addrFile     = fs.String("addr-file", "", "serve: write the bound listen address to this file (for :0 listeners)")

		// store-only flags (-data above selects the store directory).
		jsonOut  = fs.Bool("json", false, "store stats/gc/fsck: print the report as JSON")
		maxAge   = fs.Duration("max-age", 0, "store gc: collect unpinned recordings older than this (0 = no age limit)")
		maxBytes = fs.Int64("max-bytes", 0, "store gc: keep newest unpinned recordings within this logical-byte budget (0 = no budget)")
		dryRun   = fs.Bool("dry-run", false, "store gc: report what would be collected without deleting")
	)
	fs.Parse(args)
	if *spares == 0 {
		*spares = *workers
	}
	if (*minSpares != 0 || *maxSpares != 0) && !*adaptive {
		usageErr("-min-spares/-max-spares require -adaptive")
	}
	policy, err := core.ParseVerifyPolicy(*verifyPol)
	if err != nil {
		usageErr(err.Error())
	}
	// Host profiling brackets the whole command; the deferred Stop flushes
	// both files, and a failed flush exits through the uniform runtime
	// exit code (1).
	hostProf, err := profile.StartHostProfiles(*cpuProf, *memProf)
	check(err)
	defer func() { check(hostProf.Stop()) }()
	// The trace streams to disk as the run executes, holding only a bounded
	// reorder window in memory; Close finishes the JSON document.
	var sink trace.Recorder
	var stream *trace.StreamSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		check(err)
		stream = trace.NewStreamSink(f, *traceWin)
		if *traceSpan > 0 || *traceStride > 1 {
			stream.Downsample(*traceSpan, *traceStride)
		}
		sink = stream
		defer f.Close()
	}
	var reg *trace.Registry
	if *metrics || *promOut != "" || *listen != "" {
		reg = trace.NewRegistry()
	}
	if *listen != "" && cmd != "serve" {
		srv, err := trace.ServeMetrics(*listen, reg)
		check(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "doubleplay: serving /metrics and /healthz on %s\n", srv.Addr)
	}
	// Written at the end of record/verify/replay when -trace was given.
	flushTrace := func() {
		if stream == nil {
			return
		}
		check(stream.Close())
		extra := ""
		if n := stream.Dropped(); n > 0 {
			extra = fmt.Sprintf(", %d downsampled away", n)
		}
		fmt.Printf("trace: %d events streamed -> %s (max %d buffered%s; open with https://ui.perfetto.dev)\n",
			stream.Written(), *traceOut, stream.MaxBuffered(), extra)
	}
	// Written at the end of record/replay/verify when -guest-profile was
	// given; nil prof (flag unset) is a no-op.
	writeGuestProfile := func(prof *profile.Profile) {
		if prof == nil {
			return
		}
		f, err := os.Create(*guestProf)
		check(err)
		check(prof.WritePprof(f))
		check(f.Close())
		fmt.Printf("guest profile: %d stacks, %d cycles -> %s (render with 'dptrace flame')\n",
			prof.NumSamples(), prof.TotalCycles(), *guestProf)
	}
	flushMetrics := func() {
		if *promOut != "" {
			f, err := os.Create(*promOut)
			check(err)
			check(reg.WritePrometheus(f))
			check(f.Close())
			fmt.Printf("prometheus metrics -> %s\n", *promOut)
		}
		if !*metrics {
			return
		}
		fmt.Println("metrics:")
		reg.Render(os.Stdout)
	}

	switch cmd {
	case "list":
		for _, w := range workloads.All() {
			racy := ""
			if w.Racy {
				racy = " [racy]"
			}
			fmt.Printf("%-14s %-10s%s %s\n", w.Name, w.Kind, racy, w.Desc)
		}

	case "record":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		var gprof *profile.Profile
		if *guestProf != "" {
			gprof = profile.NewProfile("")
		}
		res := mustRecord(bt, *workers, *spares, *epochLen, *seed, *growth, *detect, *adaptive, *minSpares, *maxSpares, policy, sink, reg, gprof)
		printStats(*wlName, res)
		printRaces(res)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			check(err)
			check(dplog.Marshal(f, res.Recording))
			check(f.Close())
			fmt.Printf("wrote %s (%d bytes on disk, %d bytes replay payload)\n",
				*outPath, res.Stats.FileBytes, res.Stats.ReplayBytes)
		}
		writeGuestProfile(gprof)
		flushTrace()
		flushMetrics()

	case "replay":
		if *logPath == "" {
			usageErr("replay requires -log (or use 'verify' for an in-memory round trip)")
		}
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		f, err := os.Open(*logPath)
		check(err)
		rec, err := dplog.Unmarshal(f)
		check(err)
		check(f.Close())
		var gprof *profile.Profile
		if *guestProf != "" {
			gprof = profile.NewProfile("")
		}
		rep, err := replay.SequentialProfiled(nil, bt.Prog, rec, nil, sink, gprof)
		check(err)
		fmt.Printf("replayed %d epochs in %d simulated cycles; final hash %016x verified\n",
			rep.Epochs, rep.Cycles, rep.FinalHash)
		writeGuestProfile(gprof)
		flushTrace()

	case "verify":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		var recProf *profile.Profile
		if *guestProf != "" {
			recProf = profile.NewProfile("")
		}
		res := mustRecord(bt, *workers, *spares, *epochLen, *seed, *growth, *detect, *adaptive, *minSpares, *maxSpares, policy, sink, reg, recProf)
		printStats(*wlName, res)
		printRaces(res)
		// Each replay strategy regenerates the guest profile independently;
		// all of them must byte-match what the recorder gathered.
		var recProfBytes []byte
		if recProf != nil {
			recProfBytes = recProf.MarshalPprof()
		}
		checkProf := func(strategy string, p *profile.Profile) {
			if p == nil {
				return
			}
			if !bytes.Equal(recProfBytes, p.MarshalPprof()) {
				fatal(fmt.Sprintf("guest profile: %s replay profile differs from record profile", strategy))
			}
		}
		newProf := func() *profile.Profile {
			if recProf == nil {
				return nil
			}
			return profile.NewProfile("")
		}
		seqProf := newProf()
		seq, err := replay.SequentialProfiled(nil, bt.Prog, res.Recording, nil, sink, seqProf)
		check(err)
		checkProf("sequential", seqProf)
		fmt.Printf("sequential replay: OK (%d cycles)\n", seq.Cycles)
		if *parallel {
			parProf := newProf()
			par, err := replay.ParallelProfiled(nil, bt.Prog, res.Recording, res.Boundaries, *workers, nil, sink, parProf)
			check(err)
			checkProf("parallel", parProf)
			fmt.Printf("parallel replay:   OK (%d cycles on %d cores)\n", par.Cycles, *workers)
		}
		if *stride > 1 {
			sparse := res.ThinBoundaries(*stride)
			spProf := newProf()
			sp, err := replay.ParallelSparseProfiled(nil, bt.Prog, res.Recording, sparse, *workers, nil, sink, spProf)
			check(err)
			checkProf("sparse", spProf)
			fmt.Printf("sparse replay:     OK (stride %d, %d of %d checkpoints kept, %d cycles)\n",
				*stride, len(sparse), len(res.Recording.Epochs)+1, sp.Cycles)
		}
		if recProf != nil {
			fmt.Printf("guest profile:     OK (replay regenerates the record profile bit-identically, %d stacks)\n",
				recProf.NumSamples())
		}
		last := res.Boundaries[len(res.Boundaries)-1]
		if err := bt.CheckOK(last.CP.MemSnap.Peek); err != nil {
			fatal(err.Error())
		}
		fmt.Println("guest self-check:  OK")
		writeGuestProfile(recProf)
		flushTrace()
		flushMetrics()

	case "inspect":
		if *logPath == "" {
			usageErr("inspect requires -log")
		}
		f, err := os.Open(*logPath)
		check(err)
		rec, err := dplog.Unmarshal(f)
		check(err)
		check(f.Close())
		fmt.Println(rec)
		for _, ep := range rec.Epochs {
			fmt.Printf("  epoch %3d: %4d slices, %4d syscalls, %2d signals, %4d sync ops, %d threads, end %016x commit %016x\n",
				ep.Index, len(ep.Schedule), len(ep.Syscalls), len(ep.Signals), len(ep.SyncOrder), len(ep.Targets), ep.EndHash, ep.CommitHash)
		}

	case "log inspect":
		if *logPath == "" {
			usageErr("log inspect requires -log")
		}
		// -epoch doubles as the section selector here (elsewhere it is the
		// epoch length in cycles); only an explicit flag selects a section.
		sel := -1
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "epoch" {
				sel = int(*epochLen)
			}
		})
		logInspect(*logPath, sel)

	case "log upgrade":
		if *logPath == "" {
			usageErr("log upgrade requires -log")
		}
		logUpgrade(*logPath, *outPath)

	case "log extract":
		if *logPath == "" {
			usageErr("log extract requires -log")
		}
		logExtract(*logPath, *outPath, *epochRange)

	case "disasm":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		fmt.Print(asm.Disassemble(bt.Prog))

	case "races":
		bt := mustBuild(*wlName, *workers, *scale, *seed)
		det := race.NewDetector(0)
		m := vm.NewMachine(bt.Prog, simos.NewOS(bt.World), nil)
		m.Hooks.OnSync = det.OnSync
		m.Hooks.OnMemAccess = det.OnMemAccess
		uni := sched.NewUni(m)
		check(uni.Run())
		reports := det.Races()
		if len(reports) == 0 {
			fmt.Println("no data races detected")
			return
		}
		fmt.Printf("%d racy addresses:\n", len(reports))
		for _, r := range reports {
			fmt.Println("  " + r.String())
		}

	case "serve":
		serve(*listen, *dataDir, *pool, *queueDepth, *jobTimeout, *drainTimeout, *addrFile, *pprofFlag)

	case "store stats":
		storeStats(*dataDir, *jsonOut)

	case "store gc":
		storeGC(*dataDir, *maxAge, *maxBytes, *dryRun, *jsonOut)

	case "store fsck":
		storeFsck(*dataDir, *jsonOut)

	default:
		usageErr(fmt.Sprintf("unknown command %q", cmd))
	}
}

// serve runs the record/replay job daemon until SIGINT/SIGTERM, then
// drains: in-flight jobs finish (or are canceled after drainTimeout),
// artifacts are flushed, and the process exits 0.
func serve(listen, dataDir string, pool, queueDepth int, jobTimeout, drainTimeout time.Duration, addrFile string, enablePprof bool) {
	if listen == "" {
		listen = "127.0.0.1:8421"
	}
	srv, err := server.New(server.Config{
		DataDir:      dataDir,
		Workers:      pool,
		QueueDepth:   queueDepth,
		JobTimeout:   jobTimeout,
		DrainTimeout: drainTimeout,
		EnablePprof:  enablePprof,
	})
	check(err)
	srv.Start()

	ln, err := net.Listen("tcp", listen)
	check(err)
	if addrFile != "" {
		check(os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644))
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "doubleplay: serving jobs on http://%s (data %s, %d workers, queue %d)\n",
		ln.Addr(), dataDir, pool, queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "doubleplay: %s received, draining\n", sig)
	case err := <-errc:
		fatal(fmt.Sprintf("serve: %v", err))
	}

	// Drain jobs first (queued jobs cancel, running jobs finish or get
	// canceled after the grace period), then stop the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout+30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "doubleplay: drain incomplete: %v\n", err)
	}
	check(hs.Shutdown(ctx))
	fmt.Fprintln(os.Stderr, "doubleplay: drained")
}

func mustBuild(name string, workers, scale int, seed int64) *workloads.Built {
	if name == "" {
		usageErr("missing -w <workload>; see 'doubleplay list'")
	}
	wl := workloads.Get(name)
	if wl == nil {
		usageErr(fmt.Sprintf("unknown workload %q; see 'doubleplay list'", name))
	}
	return wl.Build(workloads.Params{Workers: workers, Scale: scale, Seed: seed})
}

func mustRecord(bt *workloads.Built, workers, spares int, epochLen, seed int64, growth float64, detect bool, adaptive bool, minSpares, maxSpares int, policy core.VerifyPolicy, sink trace.Recorder, reg *trace.Registry, gprof *profile.Profile) *core.Result {
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers:           workers,
		RecordCPUs:        workers,
		SpareCPUs:         spares,
		EpochCycles:       epochLen,
		Seed:              seed,
		EpochGrowth:       growth,
		DetectRaces:       detect,
		Adaptive:          adaptive,
		AdaptiveMinSpares: minSpares,
		AdaptiveMaxSpares: maxSpares,
		VerifyPolicy:      policy,
		Trace:             sink,
		Metrics:           reg,
		Profile:           gprof,
	})
	check(err)
	return res
}

func printRaces(res *core.Result) {
	if res.Races == nil {
		return
	}
	fmt.Printf("  races: %d racy addresses detected during recording\n", len(res.Races))
	for i, r := range res.Races {
		if i == 5 {
			fmt.Printf("    ...\n")
			break
		}
		fmt.Printf("    %s\n", r)
	}
}

func printStats(name string, res *core.Result) {
	s := res.Stats
	fmt.Printf("recorded %s: %d epochs, %d instrs, %d syscalls, %d sync ops, %d slices\n",
		name, s.Epochs, s.Retired, s.Syscalls, s.SyncEvents, s.Slices)
	fmt.Printf("  time: thread-parallel %d cyc, completion %d cyc; divergences %d (adopt %d, rerun %d)\n",
		s.ThreadParallelCycles, s.CompletionCycles, s.Divergences, s.HashRecoveries, s.RerunRecoveries)
	fmt.Printf("  log: %d bytes replay, %d bytes with sync order, %d bytes on disk\n",
		s.ReplayBytes, s.FullBytes, s.FileBytes)
	if s.CertStatus != "" {
		if s.VerifySkipped > 0 {
			fmt.Printf("  certificate: %s; verification skipped for all %d epochs\n",
				s.CertStatus, s.VerifySkipped)
		} else {
			fmt.Printf("  certificate: %s; full verification kept (%s)\n",
				s.CertStatus, s.VerifyFallback)
		}
	}
	if s.SpareGrows > 0 || s.SpareShrinks > 0 {
		fmt.Printf("  controller: %d grows, %d shrinks, %d active spares at completion\n",
			s.SpareGrows, s.SpareShrinks, s.ActiveSpares)
	}
	for _, d := range res.Divergences {
		switch d.Kind {
		case "state":
			fmt.Printf("  divergence @epoch %d: states disagreed on pages %v\n", d.Epoch, d.Pages)
		default:
			fmt.Printf("  divergence @epoch %d: %s\n", d.Epoch, d.Reason)
		}
	}
}

// check reports a runtime failure: message to stderr, exit 1.
func check(err error) {
	if err != nil {
		fatal(err.Error())
	}
}

// fatal is the runtime-failure exit: exit code 1, no usage text.
func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "doubleplay: "+msg)
	os.Exit(1)
}

// usageErr is the invocation-error exit: message plus usage to stderr,
// exit code 2 (matching flag.ExitOnError's convention).
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "doubleplay: "+msg)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: doubleplay <command> [flags]

commands:
  list     show the builtin benchmark suite
  record   record a workload (optionally -o file.dplog)
  replay   replay a recording from -log against a rebuilt workload
  verify   record + replay in memory, checking every hash and the guest self-check
  inspect  print a recording's per-epoch log structure (decodes every epoch)
  log      .dplog file tooling (see docs/FORMAT.md):
             log inspect -log f.dplog [-epoch N]  header, section table, index health
                                                  (-epoch: one section's frame + boundary info)
             log upgrade -log f.dplog [-o out]    migrate v4/v5 or repair v6, in place by default
             log extract -log f.dplog -epochs n..m -o out
  disasm   disassemble a workload's guest program
  races    run the happens-before detector over a workload
  serve    run the record/replay job daemon (see docs/SERVER.md)
  store    daemon artifact-store tooling (offline; -data selects the store):
             store stats -data ./dpdata [-json]   chunk/dedup/space accounting
             store gc -data ./dpdata [-max-age 720h] [-max-bytes N] [-dry-run]
             store fsck -data ./dpdata [-json]    full integrity walk (exit 1 on damage)`)
}
