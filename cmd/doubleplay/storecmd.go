package main

// The `doubleplay store` group: offline tooling over a daemon's
// artifact store (-data, the same directory `doubleplay serve -data`
// writes).
//
//	doubleplay store stats -data ./dpdata [-json]     # chunk/dedup/space accounting
//	doubleplay store gc -data ./dpdata -max-age 720h  # retention sweep (honours pins)
//	doubleplay store fsck -data ./dpdata              # full integrity walk
//
// All three run against the store on disk and are safe to use while a
// daemon is down (post-drain maintenance) — gc and fsck take the same
// on-disk layout the daemon's /admin endpoints operate on. Exit codes
// follow the global convention: fsck exits 1 when it finds damage, gc
// and stats exit 1 only on I/O errors.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"doubleplay/internal/store"
)

// openStore opens the artifact store rooted at dir without a metrics
// registry (offline tooling has nowhere to publish).
func openStore(dir string) *store.Store {
	st, err := store.Open(dir, nil)
	check(err)
	return st
}

// printJSON renders any report as indented JSON on stdout.
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(v))
}

func storeStats(dir string, jsonOut bool) {
	rep, err := openStore(dir).Stats()
	check(err)
	if jsonOut {
		printJSON(rep)
		return
	}
	fmt.Printf("store:    %s\n", dir)
	fmt.Printf("objects:  %d manifests, %d chunks, %d whole blobs\n", rep.Manifests, rep.Chunks, rep.Blobs)
	fmt.Printf("logical:  %d bytes across all recordings\n", rep.LogicalBytes)
	fmt.Printf("unique:   %d bytes after chunk dedup (saved %d)\n", rep.UniqueRawBytes, rep.DedupSavedBytes)
	fmt.Printf("on disk:  %d bytes (chunks compressed at rest)\n", rep.StoredBytes)
	fmt.Printf("dedup:    %.3fx\n", rep.DedupRatio)
}

func storeGC(dir string, maxAge time.Duration, maxBytes int64, dryRun, jsonOut bool) {
	if maxAge < 0 || maxBytes < 0 {
		usageErr("store gc: -max-age and -max-bytes must be >= 0")
	}
	rep, err := openStore(dir).GC(store.Policy{MaxAge: maxAge, MaxBytes: maxBytes, DryRun: dryRun})
	check(err)
	if jsonOut {
		printJSON(rep)
		return
	}
	verb := "reclaimed"
	if dryRun {
		verb = "would reclaim"
	}
	fmt.Printf("gc: %d jobs (%d pinned), %d recordings live\n", rep.Jobs, rep.Pinned, rep.LiveRecordings)
	fmt.Printf("gc: %s %d refs, %d manifests, %d chunks, %d blobs — %d bytes\n",
		verb, rep.RefsRemoved, rep.ManifestsRemoved, rep.ChunksRemoved, rep.BlobsRemoved, rep.BytesReclaimed)
}

func storeFsck(dir string, jsonOut bool) {
	rep, err := openStore(dir).Fsck()
	check(err)
	if jsonOut {
		printJSON(rep)
	} else {
		fmt.Printf("fsck: %d refs, %d manifests, %d chunks, %d blobs checked\n",
			rep.Refs, rep.Manifests, rep.Chunks, rep.Blobs)
		if rep.OrphanManifests+rep.OrphanChunks+rep.OrphanBlobs > 0 {
			fmt.Printf("fsck: %d orphan manifests, %d orphan chunks, %d orphan blobs (unreferenced; gc reclaims them)\n",
				rep.OrphanManifests, rep.OrphanChunks, rep.OrphanBlobs)
		}
		for _, e := range rep.Errors {
			fmt.Printf("fsck: ERROR: %s\n", e)
		}
	}
	if !rep.OK() {
		fatal(fmt.Sprintf("fsck: store at %s has %d errors", dir, len(rep.Errors)))
	}
	if !jsonOut {
		fmt.Println("fsck: ok")
	}
}
