package main

// The `doubleplay log` group: offline tooling over .dplog artifacts.
//
//	doubleplay log inspect -log pbzip.dplog            # header, section table, index health
//	doubleplay log inspect -log pbzip.dplog -epoch 3   # one section's frame + boundary info
//	doubleplay log upgrade -log old.dplog [-o new]     # migrate v4/v5 (or repair v6) in place
//	doubleplay log extract -log a.dplog -epochs 3..5 -o sub.dplog
//
// Unlike `doubleplay inspect` (which decodes every epoch and needs the
// payload to be intact), `log inspect` works off the section index, so it
// also diagnoses truncated or damaged files. docs/FORMAT.md documents the
// byte layout these tools read.

import (
	"fmt"
	"os"
	"path/filepath"

	"doubleplay/internal/dplog"
)

// openLog opens path as a random-access log reader. The file stays open
// for the life of the process — the reader fetches section bytes lazily.
func openLog(path string) *dplog.Reader {
	f, err := os.Open(path)
	check(err)
	st, err := f.Stat()
	check(err)
	rd, err := dplog.OpenReader(f, st.Size())
	if err != nil {
		fatal(fmt.Sprintf("%s: %v", path, err))
	}
	return rd
}

// logInspect prints a log's header, per-section table, and index health
// without decoding epochs it does not have to. epoch >= 0 selects one
// section: its frame and decoded boundary info print instead of the
// whole table.
func logInspect(path string, epoch int) {
	st, err := os.Stat(path)
	check(err)
	rd := openLog(path)
	h := rd.Header()

	format := fmt.Sprintf("dplog v%d (sectioned, seekable)", h.Version)
	if rd.Legacy() {
		format = fmt.Sprintf("dplog v%d (legacy flat stream)", h.Version)
	}
	fmt.Printf("file:      %s (%d bytes)\n", path, st.Size())
	fmt.Printf("format:    %s\n", format)
	fmt.Printf("program:   %s  workers: %d  seed: %d  quantum: %d\n", h.Program, h.Workers, h.Seed, h.Quantum)
	fmt.Printf("hashes:    final %016x  output %016x\n", h.FinalHash, h.OutputHash)
	fmt.Printf("sections:  %d\n", rd.NumSections())

	switch {
	case rd.Legacy():
		fmt.Printf("index:     none (pre-v6 logs decode sequentially)\n")
		fmt.Printf("hint:      'doubleplay log upgrade -log %s' migrates to the seekable v6 format\n", path)
	case rd.Recovered():
		fmt.Printf("index:     RECOVERED — trailer missing or damaged; %d sections salvaged by scan\n", rd.NumSections())
		fmt.Printf("hint:      'doubleplay log upgrade -log %s' rewrites the salvaged sections with a fresh index\n", path)
	default:
		fmt.Printf("index:     ok (%d entries, crc verified)\n", rd.NumSections())
	}

	if epoch >= 0 {
		logInspectEpoch(rd, epoch)
		return
	}
	if rd.NumSections() == 0 {
		return
	}
	fmt.Printf("\n  %5s %9s %8s %8s %6s  %-5s %s\n", "epoch", "offset", "stored", "raw", "ratio", "flags", "body")
	var totStored, totRaw int64
	for i, s := range rd.Sections() {
		flags := ""
		if s.Compressed() {
			flags += "C"
		}
		if s.Certified() {
			flags += "V"
		}
		if flags == "" {
			flags = "-"
		}
		body := "ok"
		if _, err := rd.EpochAt(i); err != nil {
			body = "ERROR: " + err.Error()
		}
		fmt.Printf("  %5d %9d %8d %8d %6.2f  %-5s %s\n",
			s.Epoch, s.Offset, s.Stored, s.Raw, float64(s.Stored)/float64(max(s.Raw, 1)), flags, body)
		totStored += int64(s.Stored)
		totRaw += int64(s.Raw)
	}
	fmt.Printf("  %5s %9s %8d %8d %6.2f\n",
		"total", "", totStored, totRaw, float64(totStored)/float64(max(totRaw, 1)))
}

// logInspectEpoch prints one section's frame entry and the decoded
// epoch's boundary info — the `-epoch N` view, for asking "what does the
// log say about this one epoch" without the full totals table.
func logInspectEpoch(rd *dplog.Reader, epoch int) {
	secs := rd.Sections()
	var sec *dplog.SectionInfo
	var pos int
	for i := range secs {
		if secs[i].Epoch == epoch {
			sec, pos = &secs[i], i
			break
		}
	}
	if sec == nil {
		fatal(fmt.Sprintf("no section for epoch %d (log holds %d sections)", epoch, rd.NumSections()))
	}
	flags := ""
	if sec.Compressed() {
		flags += "C"
	}
	if sec.Certified() {
		flags += "V"
	}
	if flags == "" {
		flags = "-"
	}
	fmt.Printf("\nepoch %d: offset %d, stored %d, raw %d (ratio %.2f), flags %s, crc %08x\n",
		sec.Epoch, sec.Offset, sec.Stored, sec.Raw,
		float64(sec.Stored)/float64(max(sec.Raw, 1)), flags, sec.CRC)
	ep, err := rd.EpochAt(pos)
	if err != nil {
		fatal(fmt.Sprintf("epoch %d body: %v", epoch, err))
	}
	var retired uint64
	for _, w := range ep.Targets {
		retired += w
	}
	fmt.Printf("  boundary: start %016x -> end %016x\n", ep.StartHash, ep.EndHash)
	fmt.Printf("  targets:  %d threads, %d retired instructions at exit\n", len(ep.Targets), retired)
	if ep.Certified {
		fmt.Printf("  schedule: none (certified epoch free-runs under the sync-order gate)\n")
	} else {
		fmt.Printf("  schedule: %d timeslices\n", len(ep.Schedule))
	}
	fmt.Printf("  injects:  %d syscalls, %d signals, %d sync ops\n",
		len(ep.Syscalls), len(ep.Signals), len(ep.SyncOrder))
}

// logUpgrade migrates a legacy log (or repairs a damaged v6 one) to the
// current sectioned format. With -o it writes there; otherwise it
// replaces the input atomically via a temp file in the same directory.
func logUpgrade(path, out string) {
	data, err := os.ReadFile(path)
	check(err)
	up, changed, err := dplog.Upgrade(data)
	if err != nil {
		fatal(fmt.Sprintf("%s: %v", path, err))
	}
	if !changed && (out == "" || out == path) {
		fmt.Printf("%s: already dplog v%d with an intact index; nothing to do\n", path, dplog.FormatVersion)
		return
	}
	if out == "" || out == path {
		// In-place: write a sibling temp file, then rename over the original.
		tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".up*")
		check(err)
		if _, err := tmp.Write(up); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			fatal(err.Error())
		}
		check(tmp.Close())
		check(os.Rename(tmp.Name(), path))
		out = path
	} else {
		check(os.WriteFile(out, up, 0o644))
	}
	rd, err := dplog.OpenReaderBytes(up)
	check(err)
	fmt.Printf("upgraded %s -> %s: dplog v%d, %d sections, %d -> %d bytes\n",
		path, out, rd.Header().Version, rd.NumSections(), len(data), len(up))
}

// logExtract writes epochs lo..hi of a log as a standalone dplog.
func logExtract(path, out, epochs string) {
	if epochs == "" {
		usageErr("log extract requires -epochs n or -epochs n..m")
	}
	if out == "" {
		usageErr("log extract requires -o <file>")
	}
	lo, hi, err := dplog.ParseEpochRange(epochs)
	if err != nil {
		usageErr(err.Error())
	}
	rd := openLog(path)
	f, err := os.Create(out)
	check(err)
	if err := rd.WriteRange(f, lo, hi); err != nil {
		f.Close()
		os.Remove(out)
		fatal(fmt.Sprintf("%s: %v", path, err))
	}
	check(f.Close())
	fmt.Printf("wrote %s: epochs %d..%d of %s (%d sections)\n", out, lo, hi, path, hi-lo+1)
}
